"""Property-based invariants of the simultaneous-switching delay model.

Exercises every cell in the packaged library with hypothesis-generated
transition times, loads, and skews, and checks the structural guarantees
the STA engine (and the paper's Section 3) relies on:

* the delay V equals the pin-to-pin tail ``DR(Tx)`` at and beyond the
  saturation skews ``SR``;
* the V is continuous at its anchor points;
* the V is minimized at zero skew and never dips below ``D0``;
* the pin ordering is a pure relabeling — ``vshape(q, p)`` mirrors
  ``vshape(p, q)`` bit-for-bit;
* the transition V is globally bounded below by its vertex value and
  attains it at ``SK_t,min`` whenever the vertex is interior;
* the Λ-shaped to-non-controlling extension peaks at zero skew and
  saturates to the lagging pin's tail.

Everything is evaluated against characterized data, so the properties
hold exactly (same float expressions), not just approximately; the few
continuity checks that straddle a branch boundary use a relative
tolerance instead.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.characterize import CellLibrary
from repro.models import NonCtrlAwareModel, VShapeModel

LIBRARY = CellLibrary.load_default()
ALL_CELLS = sorted(LIBRARY.cells)
CTRL_CELLS = sorted(
    name for name, cell in LIBRARY.cells.items() if cell.ctrl is not None
)
NONCTRL_CELLS = sorted(
    name
    for name, cell in LIBRARY.cells.items()
    if getattr(cell, "nonctrl", None) is not None
)

MODEL = VShapeModel()
NONCTRL_MODEL = NonCtrlAwareModel()

# Unit-interval draws are mapped onto each arc's characterized range, so
# one strategy serves every cell; derandomize keeps CI runs stable.
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
prop_settings = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _pair(cell, pair_index):
    """Pick an ordered input pair (p, q), p != q, from an index draw."""
    pairs = [
        (p, q)
        for p in range(cell.n_inputs)
        for q in range(cell.n_inputs)
        if p != q
    ]
    return pairs[pair_index % len(pairs)]


def _trans_in(arc, u):
    """Map a unit draw onto the arc's characterized transition range."""
    return arc.t_lo + u * (arc.t_hi - arc.t_lo)


def _load(cell, u):
    """Map a unit draw onto 0.5x..2x the characterization load."""
    return cell.ref_load * (0.5 + 1.5 * u)


def _vshape(name, pair_index, up, uq, uload):
    cell = LIBRARY.cells[name]
    pin_p, pin_q = _pair(cell, pair_index)
    t_p = _trans_in(cell.ctrl_arc(pin_p), up)
    t_q = _trans_in(cell.ctrl_arc(pin_q), uq)
    load = _load(cell, uload)
    return MODEL.vshape(cell, pin_p, pin_q, t_p, t_q, load)


# ----------------------------------------------------------------------
# Delay V-shape
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", CTRL_CELLS)
@prop_settings
@given(pair_index=st.integers(0, 63), up=unit, uq=unit, uload=unit)
def test_vshape_saturates_to_pin_tails(name, pair_index, up, uq, uload):
    """Beyond SR the V equals the lagging pin's DR(Tx), exactly."""
    shape = _vshape(name, pair_index, up, uq, uload)
    assert shape.delay(shape.s_pos) == shape.dr_p
    assert shape.delay(shape.s_pos * 2.0 + 1e-12) == shape.dr_p
    assert shape.delay(-shape.s_neg) == shape.dr_q
    assert shape.delay(-shape.s_neg * 2.0 - 1e-12) == shape.dr_q


@pytest.mark.parametrize("name", CTRL_CELLS)
@prop_settings
@given(
    pair_index=st.integers(0, 63),
    up=unit,
    uq=unit,
    uload=unit,
    uskew=unit,
)
def test_vshape_minimized_at_zero_skew(name, pair_index, up, uq, uload, uskew):
    """D0 is the global minimum: delay(0) == d0 <= delay(any skew)."""
    shape = _vshape(name, pair_index, up, uq, uload)
    assert shape.delay(0.0) == shape.d0
    assert shape.min_delay() == shape.d0
    assert shape.d0 <= shape.dr_p
    assert shape.d0 <= shape.dr_q
    skew = (uskew * 4.0 - 2.0) * max(shape.s_pos, shape.s_neg)
    assert shape.delay(skew) >= shape.d0


@pytest.mark.parametrize("name", CTRL_CELLS)
@prop_settings
@given(pair_index=st.integers(0, 63), up=unit, uq=unit, uload=unit)
def test_vshape_continuous_at_anchors(name, pair_index, up, uq, uload):
    """No jumps where the linear flanks meet the vertex and the tails."""
    shape = _vshape(name, pair_index, up, uq, uload)
    for anchor, value in (
        (shape.s_pos, shape.dr_p),
        (-shape.s_neg, shape.dr_q),
        (0.0, shape.d0),
    ):
        for side in (1.0, -1.0):
            probe = anchor + side * 1e-9 * max(shape.s_pos, shape.s_neg)
            assert math.isclose(
                shape.delay(probe), value, rel_tol=1e-6, abs_tol=1e-18
            )


@pytest.mark.parametrize("name", CTRL_CELLS)
@prop_settings
@given(
    pair_index=st.integers(0, 63),
    up=unit,
    uq=unit,
    uload=unit,
    uskew=unit,
)
def test_vshape_pin_order_is_a_relabeling(
    name, pair_index, up, uq, uload, uskew
):
    """vshape(q, p) is the mirror image of vshape(p, q), bit-for-bit."""
    cell = LIBRARY.cells[name]
    pin_p, pin_q = _pair(cell, pair_index)
    t_p = _trans_in(cell.ctrl_arc(pin_p), up)
    t_q = _trans_in(cell.ctrl_arc(pin_q), uq)
    load = _load(cell, uload)
    fwd = MODEL.vshape(cell, pin_p, pin_q, t_p, t_q, load)
    rev = MODEL.vshape(cell, pin_q, pin_p, t_q, t_p, load)
    assert rev.d0 == fwd.d0
    assert rev.s_pos == fwd.s_neg and rev.s_neg == fwd.s_pos
    assert rev.dr_p == fwd.dr_q and rev.dr_q == fwd.dr_p
    skew = (uskew * 4.0 - 2.0) * max(fwd.s_pos, fwd.s_neg)
    assert rev.delay(-skew) == fwd.delay(skew)


# ----------------------------------------------------------------------
# Transition-time V-shape
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", CTRL_CELLS)
@prop_settings
@given(
    pair_index=st.integers(0, 63),
    up=unit,
    uq=unit,
    uload=unit,
    uskew=unit,
)
def test_trans_vshape_vertex_is_global_minimum(
    name, pair_index, up, uq, uload, uskew
):
    """trans(skew) >= min_trans() everywhere; attained when interior."""
    cell = LIBRARY.cells[name]
    pin_p, pin_q = _pair(cell, pair_index)
    t_p = _trans_in(cell.ctrl_arc(pin_p), up)
    t_q = _trans_in(cell.ctrl_arc(pin_q), uq)
    shape = MODEL.trans_vshape(cell, pin_p, pin_q, t_p, t_q, _load(cell, uload))
    assert -shape.s_neg <= shape.vertex_skew <= shape.s_pos
    assert shape.min_trans() == shape.vertex_value
    assert shape.vertex_value <= shape.t_p
    assert shape.vertex_value <= shape.t_q
    skew = (uskew * 4.0 - 2.0) * max(shape.s_pos, shape.s_neg)
    assert shape.trans(skew) >= shape.vertex_value
    if -shape.s_neg < shape.vertex_skew < shape.s_pos:
        assert shape.trans(shape.minimizing_skew()) == shape.vertex_value


@pytest.mark.parametrize("name", CTRL_CELLS)
@prop_settings
@given(
    pair_index=st.integers(0, 63),
    up=unit,
    uq=unit,
    uload=unit,
    u1=unit,
    u2=unit,
)
def test_trans_vshape_monotone_away_from_vertex(
    name, pair_index, up, uq, uload, u1, u2
):
    """Each flank of the transition V is monotone away from the vertex."""
    cell = LIBRARY.cells[name]
    pin_p, pin_q = _pair(cell, pair_index)
    t_p = _trans_in(cell.ctrl_arc(pin_p), up)
    t_q = _trans_in(cell.ctrl_arc(pin_q), uq)
    shape = MODEL.trans_vshape(cell, pin_p, pin_q, t_p, t_q, _load(cell, uload))
    # Keep probes strictly inside the flank: when the vertex is clamped
    # onto a saturation skew, the vertex point itself belongs to the
    # *opposite* plateau branch and is exempt from flank monotonicity.
    lo, hi = sorted(0.01 + 0.99 * u for u in (u1, u2))
    # Right flank: vertex -> s_pos.
    near = shape.vertex_skew + lo * (shape.s_pos - shape.vertex_skew)
    far = shape.vertex_skew + hi * (shape.s_pos - shape.vertex_skew)
    assert shape.trans(near) <= shape.trans(far) + 1e-18
    # Left flank: vertex -> -s_neg.
    near = shape.vertex_skew - lo * (shape.vertex_skew + shape.s_neg)
    far = shape.vertex_skew - hi * (shape.vertex_skew + shape.s_neg)
    assert shape.trans(near) <= shape.trans(far) + 1e-18


# ----------------------------------------------------------------------
# Λ-shaped to-non-controlling extension
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", NONCTRL_CELLS)
@prop_settings
@given(
    pair_index=st.integers(0, 63),
    up=unit,
    uq=unit,
    uload=unit,
    uskew=unit,
)
def test_peak_shape_is_a_conservative_slowdown(
    name, pair_index, up, uq, uload, uskew
):
    """The Λ peaks at zero skew and saturates to the pin-to-pin tails."""
    cell = LIBRARY.cells[name]
    pin_p, pin_q = _pair(cell, pair_index)
    data = cell.nonctrl
    in_rising = cell.controlling_value == 0
    arc_p = cell.arc(pin_p, in_rising, data.out_rising)
    arc_q = cell.arc(pin_q, in_rising, data.out_rising)
    shape = NONCTRL_MODEL.nonctrl_shape(
        cell,
        pin_p,
        pin_q,
        _trans_in(arc_p, up),
        _trans_in(arc_q, uq),
        _load(cell, uload),
    )
    assert shape.p0 >= shape.tail_p
    assert shape.p0 >= shape.tail_q
    assert shape.delay(0.0) == shape.p0
    assert shape.max_delay() == shape.p0
    assert shape.delay(shape.s_pos) == shape.tail_q
    assert shape.delay(-shape.s_neg) == shape.tail_p
    skew = (uskew * 4.0 - 2.0) * max(shape.s_pos, shape.s_neg)
    assert shape.delay(skew) <= shape.p0


# ----------------------------------------------------------------------
# Pin-to-pin corner bounds (every packaged cell, ctrl-capable or not)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_CELLS)
@prop_settings
@given(u1=unit, u2=unit, ut=unit, uload=unit, pin=st.integers(0, 63))
def test_pin_delay_bounds_contain_sampled_delays(
    name, u1, u2, ut, uload, pin
):
    """Figure 9's window extremes bound every delay inside the window."""
    from repro.sta.corners import pin_delay_bounds

    cell = LIBRARY.cells[name]
    pin = pin % cell.n_inputs
    for in_rising in (False, True):
        for out_rising in (False, True):
            if not cell.has_arc(pin, in_rising, out_rising):
                continue
            arc = cell.arc(pin, in_rising, out_rising)
            lo, hi = sorted((_trans_in(arc, u1), _trans_in(arc, u2)))
            load = _load(cell, uload)
            d_min, d_max = pin_delay_bounds(
                cell, pin, in_rising, out_rising, lo, hi, load
            )
            t = lo + ut * (hi - lo)
            d = arc.delay(arc.clamp(t)) + cell.load_adjusted_delay(
                out_rising, load
            )
            assert d_min <= d + 1e-18
            assert d <= d_max + 1e-18
