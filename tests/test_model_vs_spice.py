"""Integration tests: delay-model predictions vs transistor simulation.

These reproduce the paper's Section 6.1 comparisons in miniature, using
the packaged characterized library against fresh transistor-level
simulations: the proposed model must track the simulator over skews and
transition times, and must beat the Jun/Nabavi baselines where the paper
says they fail.
"""

import pytest

from repro.models import InputEvent, JunModel, NabaviModel, VShapeModel
from repro.spice import GateCell, RampStimulus, simulate_gate
from repro.tech import GENERIC_05UM as TECH

NS = 1e-9
ARRIVAL = 2 * NS


def simulate_pair(cell, t_p, t_q, skew):
    in_rising = cell.controlling_value == 1
    stimuli = [
        RampStimulus.transition(in_rising, ARRIVAL, t_p, TECH.vdd),
        RampStimulus.transition(in_rising, ARRIVAL + skew, t_q, TECH.vdd),
    ]
    stimuli += [
        RampStimulus.steady(1 - cell.controlling_value, TECH.vdd)
        for _ in range(cell.n_inputs - 2)
    ]
    return simulate_gate(cell, stimuli)


def model_pair_delay(model, timing, t_p, t_q, skew, in_rising):
    events = [
        InputEvent(0, ARRIVAL, t_p, in_rising),
        InputEvent(1, ARRIVAL + skew, t_q, in_rising),
    ]
    delay, trans = model.controlling_response(
        timing, events, timing.ref_load
    )
    return delay, trans


@pytest.fixture(scope="module")
def nand2(library):
    return library.cell("NAND2")


class TestProposedTracksSimulator:
    @pytest.mark.parametrize(
        "skew", [-0.3 * NS, -0.1 * NS, 0.0, 0.1 * NS, 0.3 * NS, 0.6 * NS]
    )
    def test_skew_sweep_delay(self, nand2, skew):
        cell = GateCell("nand", 2, TECH)
        sim = simulate_pair(cell, 0.5 * NS, 0.5 * NS, skew)
        predicted, _ = model_pair_delay(
            VShapeModel(), nand2, 0.5 * NS, 0.5 * NS, skew, False
        )
        measured = sim.delay_from_earliest()
        assert predicted == pytest.approx(measured, abs=0.035 * NS)

    @pytest.mark.parametrize("t_q", [0.2 * NS, 0.5 * NS, 1.0 * NS])
    def test_transition_time_sweep_at_zero_skew(self, nand2, t_q):
        cell = GateCell("nand", 2, TECH)
        sim = simulate_pair(cell, 0.5 * NS, t_q, 0.0)
        predicted, _ = model_pair_delay(
            VShapeModel(), nand2, 0.5 * NS, t_q, 0.0, False
        )
        assert predicted == pytest.approx(
            sim.delay_from_earliest(), abs=0.03 * NS
        )

    def test_output_transition_time_tracked(self, nand2):
        cell = GateCell("nand", 2, TECH)
        sim = simulate_pair(cell, 0.5 * NS, 0.5 * NS, 0.0)
        _, predicted = model_pair_delay(
            VShapeModel(), nand2, 0.5 * NS, 0.5 * NS, 0.0, False
        )
        assert predicted == pytest.approx(sim.trans_time, rel=0.2)

    def test_single_input_pin_to_pin(self, nand2):
        cell = GateCell("nand", 2, TECH)
        sim = simulate_gate(cell, [
            RampStimulus.transition(False, ARRIVAL, 0.5 * NS, TECH.vdd),
            RampStimulus.steady(1, TECH.vdd),
        ])
        arc = nand2.ctrl_arc(0)
        assert arc.delay(0.5 * NS) == pytest.approx(
            sim.delay_from_pin(ARRIVAL), rel=0.08
        )


class TestBaselineFailureModes:
    def test_jun_fails_at_large_skew(self, nand2):
        """Figure 12: Jun's error grows with skew; ours stays bounded."""
        cell = GateCell("nand", 2, TECH)
        skew = 0.6 * NS
        sim = simulate_pair(cell, 0.5 * NS, 0.5 * NS, skew)
        measured = sim.delay_from_earliest()
        ours, _ = model_pair_delay(
            VShapeModel(), nand2, 0.5 * NS, 0.5 * NS, skew, False
        )
        jun, _ = model_pair_delay(
            JunModel(), nand2, 0.5 * NS, 0.5 * NS, skew, False
        )
        assert abs(ours - measured) < abs(jun - measured)
        assert abs(jun - measured) > 0.15 * measured

    def test_nabavi_fails_with_unequal_transition_times(self, nand2):
        """Figure 11: Nabavi degrades when Tx != Ty at zero skew."""
        cell = GateCell("nand", 2, TECH)
        sim = simulate_pair(cell, 0.5 * NS, 1.4 * NS, 0.0)
        measured = sim.delay_from_earliest()
        ours, _ = model_pair_delay(
            VShapeModel(), nand2, 0.5 * NS, 1.4 * NS, 0.0, False
        )
        nabavi, _ = model_pair_delay(
            NabaviModel(), nand2, 0.5 * NS, 1.4 * NS, 0.0, False
        )
        assert abs(ours - measured) < abs(nabavi - measured)

    def test_nabavi_position_blind_on_nand5(self, library):
        """Figure 10: position-4 pin-to-pin delay, proposed vs Nabavi."""
        nand5 = library.cell("NAND5")
        cell = GateCell("nand", 5, TECH)
        stimuli = [RampStimulus.steady(1, TECH.vdd)] * 5
        stimuli[4] = RampStimulus.transition(False, ARRIVAL, 0.5 * NS,
                                             TECH.vdd)
        sim = simulate_gate(cell, stimuli)
        measured = sim.delay_from_pin(ARRIVAL)
        ours, _ = VShapeModel().pin_to_pin(
            nand5, 4, False, True, 0.5 * NS, nand5.ref_load
        )
        nabavi, _ = NabaviModel().pin_to_pin(
            nand5, 4, False, True, 0.5 * NS, nand5.ref_load
        )
        assert abs(ours - measured) < abs(nabavi - measured)
        # The position effect itself is substantial.
        pos0, _ = VShapeModel().pin_to_pin(
            nand5, 0, False, True, 0.5 * NS, nand5.ref_load
        )
        assert measured > 1.1 * pos0


class TestLibraryWideSanity:
    @pytest.mark.parametrize(
        "name", ["NAND2", "NAND3", "NOR2", "AND2", "OR2"]
    )
    def test_d0_below_both_tails_across_grid(self, library, name):
        timing = library.cell(name)
        model = VShapeModel()
        for t_p in (0.2 * NS, 0.6 * NS, 1.2 * NS):
            for t_q in (0.2 * NS, 0.6 * NS, 1.2 * NS):
                shape = model.vshape(timing, 0, 1, t_p, t_q, timing.ref_load)
                assert shape.d0 <= shape.dr_p + 1e-15
                assert shape.d0 <= shape.dr_q + 1e-15
                assert shape.s_pos > 0 and shape.s_neg > 0

    @pytest.mark.parametrize("name", ["NAND4", "NAND5", "NOR4"])
    def test_multi_scale_speeds_up(self, library, name):
        timing = library.cell(name)
        scales = timing.ctrl.multi_scale
        assert all(float(v) < 1.05 for k, v in scales.items() if k != "2")

    def test_every_cell_has_complete_arcs(self, library):
        for name, timing in library.cells.items():
            if timing.kind == "xor":
                expected = 4 * timing.n_inputs
            else:
                expected = 2 * timing.n_inputs
            assert len(timing.arcs) == expected, name
