"""Tests for the variation-aware Monte Carlo STA subsystem.

The load-bearing guarantees, each checked bitwise where the design
promises bitwise behaviour:

* sigma-zero sampling reproduces the deterministic analyzer exactly —
  every line window, both directions, plus the PO extremes;
* results are bit-identical across ``jobs`` (the block plan and the
  per-block RNG keys, not the pool, define the draws);
* the draws are keyed by ``(seed, block)`` only, so the block size is
  part of a result's identity and the seed reproduces it;
* the aggregates (quantiles, slack, criticality) are consistent with
  the raw per-output sample arrays they summarize.
"""

import numpy as np
import pytest

from repro.circuit import load_packaged_bench
from repro.models import NonCtrlAwareModel, PinToPinModel, VShapeModel
from repro.sta.analysis import TimingAnalyzer
from repro.stat import (
    DEFAULT_QUANTILES,
    MonteCarloEngine,
    VariationModel,
    plan_blocks,
    run_mc,
)

MODELS = {
    "vshape": VShapeModel,
    "pin2pin": PinToPinModel,
    "nonctrl": NonCtrlAwareModel,
}


@pytest.fixture(scope="module")
def c432s():
    return load_packaged_bench("c432s")


# ----------------------------------------------------------------------
# Variation model
# ----------------------------------------------------------------------
class TestVariationModel:
    def test_nominal_factors_are_exactly_one(self):
        model = VariationModel(sigma_corr=0.0, sigma_ind=0.0)
        assert model.is_nominal
        factors = model.factors_for_block(
            seed=3, start=0, cell_index=np.array([0, 1, 1, 2]),
            n_cells=3, n_samples=7,
        )
        assert factors.shape == (4, 7)
        # x * 1.0 == x in IEEE floats, so exact ones give bit-exact
        # reproduction of the deterministic pass downstream.
        assert np.all(factors == 1.0)

    def test_factors_deterministic_per_seed_and_block(self):
        model = VariationModel(sigma_corr=0.05, sigma_ind=0.03)
        idx = np.array([0, 1, 0])
        a = model.factors_for_block(7, 128, idx, 2, 16)
        b = model.factors_for_block(7, 128, idx, 2, 16)
        c = model.factors_for_block(7, 256, idx, 2, 16)
        d = model.factors_for_block(8, 128, idx, 2, 16)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_correlated_term_is_shared_per_cell(self):
        model = VariationModel(sigma_corr=0.2, sigma_ind=0.0)
        idx = np.array([0, 0, 1])
        factors = model.factors_for_block(1, 0, idx, 2, 32)
        # With only the correlated term, same-cell gates move together.
        assert np.array_equal(factors[0], factors[1])
        assert not np.array_equal(factors[0], factors[2])

    def test_floor_clips_extreme_draws(self):
        model = VariationModel(sigma_corr=5.0, sigma_ind=5.0, floor=0.05)
        factors = model.factors_for_block(
            2, 0, np.arange(8), 8, 256
        )
        assert factors.min() >= 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationModel(sigma_corr=-0.1)
        with pytest.raises(ValueError):
            VariationModel(floor=0.0)

    def test_round_trip(self):
        model = VariationModel(sigma_corr=0.11, sigma_ind=0.07, floor=0.2)
        assert VariationModel.from_dict(model.to_dict()) == model


def test_plan_blocks_partitions_sample_range():
    assert plan_blocks(10, 4) == [(0, 4), (4, 4), (8, 2)]
    assert plan_blocks(4, 8) == [(0, 4)]
    assert sum(size for _, size in plan_blocks(1000, 128)) == 1000


# ----------------------------------------------------------------------
# Sigma-zero parity with the deterministic analyzer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("bench", ["c17", "c432s"])
def test_engine_nominal_parity(bench, model_name, library, request):
    """F == 1.0 must reproduce TimingAnalyzer bit-for-bit, per line."""
    circuit = request.getfixturevalue(bench) if bench == "c17" else (
        load_packaged_bench(bench)
    )
    model = MODELS[model_name]()
    engine = MonteCarloEngine(circuit, library, model=model)
    reference = TimingAnalyzer(circuit, library, model).analyze()
    windows = engine.propagate(np.ones((engine.n_gates, 1)))
    for line in circuit.lines:
        expected = reference.timings[line]
        got = engine.line_timing_at(windows, line, 0)
        for direction in ("rise", "fall"):
            want = getattr(expected, direction)
            have = getattr(got, direction)
            assert have.state == want.state, (line, direction)
            if not want.is_active:
                continue
            assert have.a_s == want.a_s, (line, direction)
            assert have.a_l == want.a_l, (line, direction)
            assert have.t_s == want.t_s, (line, direction)
            assert have.t_l == want.t_l, (line, direction)
    po_max, po_min = engine.po_extremes(windows)
    assert float(po_max.max()) == reference.output_max_arrival()
    assert float(po_min.min()) == reference.output_min_arrival()


def test_single_nominal_sample_matches_deterministic_sta(c17, library):
    """--samples 1 --sigma 0 is the deterministic answer, bitwise."""
    result = run_mc(
        c17, library, samples=1, seed=9,
        variation=VariationModel(sigma_corr=0.0, sigma_ind=0.0),
    )
    assert float(result.delay[0]) == result.nominal_max
    assert float(result.min_delay[0]) == result.nominal_min


# ----------------------------------------------------------------------
# Parallel determinism
# ----------------------------------------------------------------------
def test_run_mc_bit_identical_across_jobs(c17, library):
    kwargs = dict(samples=50, seed=11, block=16)
    serial = run_mc(c17, library, jobs=1, **kwargs)
    for jobs in (2, 4):
        pooled = run_mc(c17, library, jobs=jobs, **kwargs)
        assert np.array_equal(serial.po_max, pooled.po_max)
        assert np.array_equal(serial.po_min, pooled.po_min)
        assert serial.criticality() == pooled.criticality()


def test_run_mc_seed_reproducibility(c17, library):
    a = run_mc(c17, library, samples=40, seed=5, block=8)
    b = run_mc(c17, library, samples=40, seed=5, block=8)
    c = run_mc(c17, library, samples=40, seed=6, block=8)
    assert np.array_equal(a.po_max, b.po_max)
    assert not np.array_equal(a.po_max, c.po_max)


def test_block_size_is_part_of_draw_identity(c17, library):
    """Draws are keyed by (seed, block start): resizing blocks reshuffles
    them, so --block is part of a result's identity (unlike --jobs)."""
    a = run_mc(c17, library, samples=40, seed=5, block=8)
    b = run_mc(c17, library, samples=40, seed=5, block=16)
    assert not np.array_equal(a.po_max, b.po_max)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mc_result(c432s):
    return run_mc(c432s, samples=96, seed=3, block=32)


def test_quantiles_are_ordered(mc_result):
    qs = mc_result.quantiles(DEFAULT_QUANTILES)
    assert qs[0.5] <= qs[0.95] <= qs[0.99]
    delay = mc_result.delay
    assert delay.min() <= qs[0.5] <= delay.max()


def test_slack_defaults_to_nominal_period(mc_result):
    slack = mc_result.slack()
    assert np.array_equal(slack, mc_result.nominal_max - mc_result.delay)
    sq = mc_result.slack_quantiles((0.5, 0.99))
    assert sq[0.99] <= sq[0.5]
    explicit = mc_result.slack(period=1e-9)
    assert np.array_equal(explicit, 1e-9 - mc_result.delay)


def test_criticality_is_a_distribution(mc_result):
    crit = mc_result.criticality()
    assert set(crit) == set(mc_result.outputs)
    assert abs(sum(crit.values()) - 1.0) < 1e-12
    assert all(0.0 <= v <= 1.0 for v in crit.values())


def test_summary_is_json_able(mc_result):
    import json

    payload = mc_result.summary()
    text = json.dumps(payload)
    assert payload["samples"] == 96
    assert payload["circuit"] == mc_result.circuit_name
    assert "0.95" in payload["quantiles_s"]
    assert json.loads(text)["seed"] == 3


def test_variation_widens_the_distribution(c17, library):
    tight = run_mc(
        c17, library, samples=64, seed=1,
        variation=VariationModel(sigma_corr=0.01, sigma_ind=0.0),
    )
    wide = run_mc(
        c17, library, samples=64, seed=1,
        variation=VariationModel(sigma_corr=0.10, sigma_ind=0.0),
    )
    assert wide.delay.std() > tight.delay.std()
