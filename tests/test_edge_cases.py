"""Edge-case coverage across layers: XOR timing, xnor library gap,
solver stress, simulator corner situations."""

import pytest

from repro.circuit import Circuit, Gate, parse_bench
from repro.models import VShapeModel
from repro.spice import GateCell, RampStimulus, simulate_gate
from repro.sta import PiStimulus, TimingAnalyzer, TimingSimulator
from repro.tech import GENERIC_05UM as TECH

NS = 1e-9


class TestXorCircuitTiming:
    def make_circuit(self):
        return Circuit(
            "xorc", ["a", "b", "c"], ["z"],
            [
                Gate("m", "xor", ["a", "b"]),
                Gate("z", "xor", ["m", "c"]),
            ],
        )

    def test_sta_propagates_both_directions(self, library):
        circuit = self.make_circuit()
        result = TimingAnalyzer(circuit, library, VShapeModel()).analyze()
        for line in ("m", "z"):
            assert result.line(line).rise.is_active
            assert result.line(line).fall.is_active

    def test_simulation_both_xor_inputs_switching_cancels(self, library):
        circuit = self.make_circuit()
        sim = TimingSimulator(circuit, library, VShapeModel())
        run = sim.run({
            "a": PiStimulus.transition(True),
            "b": PiStimulus.transition(True),
            "c": PiStimulus.steady(0),
        })
        # a^b is 0 in both frames: m does not settle to a new value.
        assert run.events["m"] is None
        assert run.events["z"] is None

    def test_sta_soundness_on_xor_chain(self, library):
        import random

        circuit = self.make_circuit()
        sta = TimingAnalyzer(circuit, library, VShapeModel()).analyze()
        sim = TimingSimulator(circuit, library, VShapeModel())
        rng = random.Random(2)
        for _ in range(64):
            stimuli = {
                pi: PiStimulus(rng.randint(0, 1), rng.randint(0, 1))
                for pi in circuit.inputs
            }
            run = sim.run(stimuli)
            for line in circuit.lines:
                event = run.events[line]
                if event is None:
                    continue
                window = sta.line(line).window(event.rising)
                assert window.contains_event(
                    event.arrival, event.trans, tol=1e-12
                )


class TestXnorLibraryGap:
    def test_parseable_but_not_characterized(self, library):
        circuit = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = XNOR(a, b)\n"
        )
        assert circuit.evaluate({"a": 1, "b": 1})["z"] == 1
        # The shipped library has no XNOR cell: the analyzer reports the
        # missing cell explicitly instead of mis-timing it.
        with pytest.raises(KeyError, match="XNOR2"):
            TimingAnalyzer(circuit, library, VShapeModel())


class TestSolverStress:
    def test_nand5_all_inputs_switching(self):
        cell = GateCell("nand", 5, TECH)
        stimuli = [
            RampStimulus.transition(False, 2 * NS + i * 0.05 * NS,
                                    0.3 * NS, TECH.vdd)
            for i in range(5)
        ]
        result = simulate_gate(cell, stimuli)
        assert result.output_rising
        assert 0 < result.delay_from_earliest() < 1 * NS

    def test_very_fast_and_very_slow_mixed(self):
        cell = GateCell("nand", 2, TECH)
        result = simulate_gate(cell, [
            RampStimulus.transition(False, 2 * NS, 0.05 * NS, TECH.vdd),
            RampStimulus.transition(False, 2 * NS, 3.0 * NS, TECH.vdd),
        ])
        assert result.output_rising
        assert result.trans_time > 0

    def test_staggered_controlling_inputs_settle(self):
        """Closely staggered to-controlling NOR inputs settle low once."""
        cell = GateCell("nor", 2, TECH)
        result = simulate_gate(cell, [
            RampStimulus.transition(True, 2 * NS, 0.2 * NS, TECH.vdd),
            RampStimulus.transition(True, 2.3 * NS, 0.2 * NS, TECH.vdd),
        ])
        assert not result.output_rising
        assert result.delay_from_earliest() > 0


class TestSimulatorCornerSituations:
    def test_equal_arrivals_on_all_nand_inputs(self, c17, library):
        sim = TimingSimulator(c17, library, VShapeModel())
        run = sim.run({
            pi: PiStimulus.transition(False, arrival=0.0)
            for pi in c17.inputs
        })
        # All inputs falling: every first-level NAND rises.
        assert run.events["G10"].rising
        assert run.events["G11"].rising
        # Outputs: G22 = NAND(G10^, G16v)...  Frame2 values must match
        # functional evaluation.
        ref = c17.evaluate({pi: 0 for pi in c17.inputs})
        assert run.values2 == ref

    def test_negative_arrival_times_allowed(self, c17, library):
        sim = TimingSimulator(c17, library, VShapeModel())
        run = sim.run({
            pi: (
                PiStimulus.transition(False, arrival=-1 * NS)
                if pi == "G1"
                else PiStimulus.steady(1)
            )
            for pi in c17.inputs
        })
        assert run.events["G10"].arrival > -1 * NS

    def test_wide_trans_time_clamped_by_arcs(self, c17, library):
        """Transition times outside the characterized range are clamped,
        not extrapolated into nonsense."""
        sim = TimingSimulator(c17, library, VShapeModel())
        run = sim.run({
            pi: (
                PiStimulus.transition(False, trans=50 * NS)
                if pi == "G1"
                else PiStimulus.steady(1)
            )
            for pi in c17.inputs
        })
        event = run.events["G10"]
        assert event is not None
        assert 0 < event.trans < 5 * NS
