"""Tests for three-valued gate evaluation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.logic import (
    CONTROLLING_VALUE,
    controlled_output,
    evaluate_gate,
    noncontrolled_output,
)

BINARY_TRUTH = {
    "and": lambda vals: int(all(vals)),
    "nand": lambda vals: int(not all(vals)),
    "or": lambda vals: int(any(vals)),
    "nor": lambda vals: int(not any(vals)),
    "xor": lambda vals: sum(vals) % 2,
    "xnor": lambda vals: 1 - sum(vals) % 2,
}


class TestBinaryEvaluation:
    @pytest.mark.parametrize("kind", sorted(BINARY_TRUTH))
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_truth_table(self, kind, n):
        for vals in itertools.product((0, 1), repeat=n):
            assert evaluate_gate(kind, list(vals)) == BINARY_TRUTH[kind](vals)

    def test_inv_and_buf(self):
        assert evaluate_gate("inv", [0]) == 1
        assert evaluate_gate("inv", [1]) == 0
        assert evaluate_gate("buf", [0]) == 0
        assert evaluate_gate("buf", [1]) == 1

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            evaluate_gate("mux", [0, 1])

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            evaluate_gate("inv", [0, 1])
        with pytest.raises(ValueError):
            evaluate_gate("nand", [0])


class TestUnknownPropagation:
    def test_controlling_value_dominates_x(self):
        assert evaluate_gate("nand", [0, None]) == 1
        assert evaluate_gate("and", [0, None]) == 0
        assert evaluate_gate("nor", [1, None]) == 0
        assert evaluate_gate("or", [1, None]) == 1

    def test_noncontrolling_with_x_stays_unknown(self):
        assert evaluate_gate("nand", [1, None]) is None
        assert evaluate_gate("or", [0, None]) is None

    def test_xor_with_x_is_unknown(self):
        assert evaluate_gate("xor", [1, None]) is None
        assert evaluate_gate("xnor", [None, None]) is None

    def test_inv_of_x(self):
        assert evaluate_gate("inv", [None]) is None

    @given(
        kind=st.sampled_from(sorted(BINARY_TRUTH)),
        vals=st.lists(st.sampled_from([0, 1, None]), min_size=2, max_size=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_x_result_is_consistent_with_completions(self, kind, vals):
        """If evaluation returns a definite value, every completion of the
        X inputs must produce that value."""
        result = evaluate_gate(kind, vals)
        if result is None:
            return
        unknown_positions = [i for i, v in enumerate(vals) if v is None]
        for combo in itertools.product((0, 1), repeat=len(unknown_positions)):
            completed = list(vals)
            for pos, val in zip(unknown_positions, combo):
                completed[pos] = val
            assert evaluate_gate(kind, completed) == result


class TestControlledOutputs:
    def test_controlled_output_values(self):
        assert controlled_output("nand") == 1
        assert controlled_output("and") == 0
        assert controlled_output("nor") == 0
        assert controlled_output("or") == 1
        assert controlled_output("xor") is None

    def test_noncontrolled_is_complement(self):
        for kind, cv in CONTROLLING_VALUE.items():
            if cv is None:
                assert noncontrolled_output(kind) is None
            else:
                assert noncontrolled_output(kind) == 1 - controlled_output(kind)
