"""Tests for timing-path tracing and slack reports."""

import pytest

from repro.models import VShapeModel
from repro.sta import TimingAnalyzer, TimingReporter

NS = 1e-9


@pytest.fixture(scope="module")
def reporter(c17, library):
    analyzer = TimingAnalyzer(c17, library, VShapeModel())
    result = analyzer.analyze()
    return TimingReporter(analyzer, result), analyzer, result


class TestPathTracing:
    def test_critical_path_structure(self, reporter, c17):
        rep, _, result = reporter
        path = rep.critical_path()
        assert path.kind == "max"
        # Starts at a primary input, ends at a primary output.
        assert c17.is_primary_input(path.startpoint)
        assert path.endpoint in c17.outputs
        assert path.arrival == pytest.approx(result.output_max_arrival())

    def test_arrivals_monotone_along_path(self, reporter):
        rep, _, _ = reporter
        path = rep.critical_path()
        arrivals = [stage.arrival for stage in path.stages]
        assert arrivals == sorted(arrivals)

    def test_stages_are_connected(self, reporter, c17):
        rep, _, _ = reporter
        path = rep.critical_path()
        for upstream, downstream in zip(path.stages, path.stages[1:]):
            gate = c17.driver(downstream.line)
            assert gate is not None
            assert upstream.line in gate.inputs

    def test_shortest_path(self, reporter, c17, library):
        rep, _, result = reporter
        path = rep.shortest_path()
        assert path.kind == "min"
        assert path.arrival == pytest.approx(result.output_min_arrival())
        assert c17.is_primary_input(path.startpoint)

    def test_trace_impossible_direction_raises(self, c17, library):
        from repro.itr import ItrEngine, TwoFrame

        engine = ItrEngine(c17, library, VShapeModel())
        values = engine.assign(engine.initial_values(), "G1", TwoFrame.parse("11"))
        refined = engine.refine(values)
        rep = TimingReporter(engine.analyzer, refined.sta)
        with pytest.raises(ValueError):
            rep.trace("G1", True, kind="max")

    def test_format_mentions_cells(self, reporter):
        rep, _, _ = reporter
        text = rep.critical_path().format()
        assert "NAND2" in text
        assert "primary input" in text
        assert "ns" in text

    def test_trace_through_memoized_passes(self, c17, library):
        # A second analyze() is served entirely from the memo; the trace
        # must reproduce every stage bound exactly against those copies.
        from repro.sta.analysis import PerfConfig

        analyzer = TimingAnalyzer(
            c17, library, VShapeModel(), perf=PerfConfig(memo_enabled=True)
        )
        first = TimingReporter(analyzer, analyzer.analyze()).critical_path()
        second = TimingReporter(analyzer, analyzer.analyze()).critical_path()
        assert [s.line for s in first.stages] == [
            s.line for s in second.stages
        ]
        assert first.arrival == second.arrival

    def test_trace_level_engine_result(self, c17, library):
        # The level-compiled pass is bit-identical, so the gate-level
        # tracer reproduces its bounds without slack.
        from repro.sta.analysis import PerfConfig

        gate = TimingAnalyzer(c17, library, VShapeModel())
        gate_path = TimingReporter(gate, gate.analyze()).critical_path()
        level = TimingAnalyzer(
            c17, library, VShapeModel(), perf=PerfConfig(engine="level")
        )
        level_path = TimingReporter(
            level, level.analyze()
        ).critical_path()
        assert [s.line for s in gate_path.stages] == [
            s.line for s in level_path.stages
        ]
        assert gate_path.arrival == level_path.arrival

    def test_trace_foreign_result_raises(self, c17, library):
        # Pairing a result with an analyzer whose loads differ must
        # raise, not fabricate the closest-looking path.
        from repro.sta.analysis import StaConfig

        analyzer = TimingAnalyzer(c17, library, VShapeModel())
        other = TimingAnalyzer(
            c17,
            library,
            VShapeModel(),
            config=StaConfig(po_load=21e-15),
        )
        rep = TimingReporter(analyzer, other.analyze())
        with pytest.raises(ValueError, match="stale"):
            rep.critical_path()

    def test_trace_tampered_result_raises(self, reporter, c17):
        import copy

        rep, analyzer, result = reporter
        endpoint = rep.critical_path().endpoint
        tampered = copy.deepcopy(result)
        tampered.timings[endpoint].rise.a_l += 0.5 * NS
        tampered.timings[endpoint].fall.a_l += 0.5 * NS
        bad = TimingReporter(analyzer, tampered)
        with pytest.raises(ValueError, match="stale"):
            bad.critical_path()


class TestSlackTable:
    def test_sorted_by_slack(self, reporter):
        rep, analyzer, result = reporter
        required = analyzer.compute_required(result)
        table = rep.slack_table(required)
        slacks = [row[-1] for row in table]
        assert slacks == sorted(slacks)

    def test_zero_worst_slack_at_default_requirements(self, reporter):
        rep, analyzer, result = reporter
        required = analyzer.compute_required(result)
        table = rep.slack_table(required, worst=1)
        assert table[0][-1] == pytest.approx(0.0, abs=1e-15)

    def test_worst_limits_rows(self, reporter):
        rep, analyzer, result = reporter
        required = analyzer.compute_required(result)
        assert len(rep.slack_table(required, worst=2)) == 2


class TestReportCli:
    def test_report_command(self, capsys):
        from repro.cli import main

        assert main(["report", "c17", "--worst", "3"]) == 0
        out = capsys.readouterr().out
        assert "latest path" in out
        assert "earliest path" in out
        assert "slack" in out
