"""Tests for timing-path tracing and slack reports."""

import pytest

from repro.models import VShapeModel
from repro.sta import TimingAnalyzer, TimingReporter

NS = 1e-9


@pytest.fixture(scope="module")
def reporter(c17, library):
    analyzer = TimingAnalyzer(c17, library, VShapeModel())
    result = analyzer.analyze()
    return TimingReporter(analyzer, result), analyzer, result


class TestPathTracing:
    def test_critical_path_structure(self, reporter, c17):
        rep, _, result = reporter
        path = rep.critical_path()
        assert path.kind == "max"
        # Starts at a primary input, ends at a primary output.
        assert c17.is_primary_input(path.startpoint)
        assert path.endpoint in c17.outputs
        assert path.arrival == pytest.approx(result.output_max_arrival())

    def test_arrivals_monotone_along_path(self, reporter):
        rep, _, _ = reporter
        path = rep.critical_path()
        arrivals = [stage.arrival for stage in path.stages]
        assert arrivals == sorted(arrivals)

    def test_stages_are_connected(self, reporter, c17):
        rep, _, _ = reporter
        path = rep.critical_path()
        for upstream, downstream in zip(path.stages, path.stages[1:]):
            gate = c17.driver(downstream.line)
            assert gate is not None
            assert upstream.line in gate.inputs

    def test_shortest_path(self, reporter, c17, library):
        rep, _, result = reporter
        path = rep.shortest_path()
        assert path.kind == "min"
        assert path.arrival == pytest.approx(result.output_min_arrival())
        assert c17.is_primary_input(path.startpoint)

    def test_trace_impossible_direction_raises(self, c17, library):
        from repro.itr import ItrEngine, TwoFrame

        engine = ItrEngine(c17, library, VShapeModel())
        values = engine.assign(engine.initial_values(), "G1", TwoFrame.parse("11"))
        refined = engine.refine(values)
        rep = TimingReporter(engine.analyzer, refined.sta)
        with pytest.raises(ValueError):
            rep.trace("G1", True, kind="max")

    def test_format_mentions_cells(self, reporter):
        rep, _, _ = reporter
        text = rep.critical_path().format()
        assert "NAND2" in text
        assert "primary input" in text
        assert "ns" in text


class TestSlackTable:
    def test_sorted_by_slack(self, reporter):
        rep, analyzer, result = reporter
        required = analyzer.compute_required(result)
        table = rep.slack_table(required)
        slacks = [row[-1] for row in table]
        assert slacks == sorted(slacks)

    def test_zero_worst_slack_at_default_requirements(self, reporter):
        rep, analyzer, result = reporter
        required = analyzer.compute_required(result)
        table = rep.slack_table(required, worst=1)
        assert table[0][-1] == pytest.approx(0.0, abs=1e-15)

    def test_worst_limits_rows(self, reporter):
        rep, analyzer, result = reporter
        required = analyzer.compute_required(result)
        assert len(rep.slack_table(required, worst=2)) == 2


class TestReportCli:
    def test_report_command(self, capsys):
        from repro.cli import main

        assert main(["report", "c17", "--worst", "3"]) == 0
        out = capsys.readouterr().out
        assert "latest path" in out
        assert "earliest path" in out
        assert "slack" in out
