"""Unit tests for waveform measurements and ramp stimuli."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.waveform import (
    RampStimulus,
    Waveform,
    WaveformError,
    span_of_stimuli,
)

VDD = 3.3


def linear_ramp(t0, t1, v0, v1, n=200, pad=1e-9):
    """A sampled saturated linear ramp from (t0, v0) to (t1, v1)."""
    times = np.linspace(t0 - pad, t1 + pad, n)
    vals = np.interp(times, [t0, t1], [v0, v1])
    return Waveform(times, vals, VDD)


class TestWaveformConstruction:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]), VDD)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([0.0]), VDD)


class TestCrossings:
    def test_single_rising_crossing_interpolated(self):
        w = linear_ramp(0.0, 1e-9, 0.0, VDD)
        t = w.cross_time(0.5 * VDD, rising=True)
        assert t == pytest.approx(0.5e-9, rel=1e-6)

    def test_direction_filter(self):
        # Up then down: a pulse.
        times = np.linspace(0, 4e-9, 400)
        vals = np.where(times < 2e-9, times / 2e-9 * VDD, (4e-9 - times) / 2e-9 * VDD)
        w = Waveform(times, vals, VDD)
        up = w.cross_time(0.5 * VDD, rising=True)
        down = w.cross_time(0.5 * VDD, rising=False)
        assert up < down
        assert up == pytest.approx(1e-9, rel=1e-2)
        assert down == pytest.approx(3e-9, rel=1e-2)

    def test_missing_crossing_raises(self):
        w = Waveform(np.array([0.0, 1e-9]), np.array([0.0, 0.1]), VDD)
        with pytest.raises(WaveformError):
            w.cross_time(0.5 * VDD)

    def test_no_crossing_of_half_vdd_raises_on_arrival(self):
        w = Waveform(np.array([0.0, 1e-9]), np.array([0.0, 0.2]), VDD)
        with pytest.raises(WaveformError):
            w.arrival_time()


class TestPaperMeasurements:
    def test_arrival_is_half_vdd_crossing(self):
        w = linear_ramp(1e-9, 2e-9, 0.0, VDD)
        assert w.arrival_time() == pytest.approx(1.5e-9, rel=1e-6)

    def test_transition_time_is_ten_ninety(self):
        w = linear_ramp(0.0, 1e-9, 0.0, VDD)
        # 10% to 90% of a 1 ns full ramp is 0.8 ns.
        assert w.transition_time() == pytest.approx(0.8e-9, rel=1e-3)

    def test_falling_measurements(self):
        w = linear_ramp(0.0, 2e-9, VDD, 0.0)
        assert w.final_transition_rising() is False
        assert w.arrival_time() == pytest.approx(1e-9, rel=1e-3)
        assert w.transition_time() == pytest.approx(1.6e-9, rel=1e-3)

    def test_glitch_then_settle_uses_last_transition(self):
        # Rise, fall, rise: final transition is rising.
        times = np.linspace(0, 6e-9, 600)
        seg = [0.0, VDD, 0.0, VDD]
        knots = [0.0, 2e-9, 4e-9, 6e-9]
        vals = np.interp(times, knots, seg)
        w = Waveform(times, vals, VDD)
        assert w.final_transition_rising() is True
        assert w.arrival_time() == pytest.approx(5e-9, rel=1e-2)

    def test_value_at_interpolates(self):
        w = linear_ramp(0.0, 1e-9, 0.0, VDD)
        assert w.value_at(0.5e-9) == pytest.approx(0.5 * VDD, rel=1e-6)


class TestRampStimulus:
    def test_steady_levels(self):
        assert RampStimulus.steady(1, VDD).voltage(0.0) == VDD
        assert RampStimulus.steady(0, VDD).voltage(5e-9) == 0.0
        assert not RampStimulus.steady(1, VDD).is_transition

    def test_transition_hits_requested_arrival_and_ttime(self):
        stim = RampStimulus.transition(True, 2e-9, 0.8e-9, VDD)
        # 50% at the arrival time.
        assert stim.voltage(2e-9) == pytest.approx(0.5 * VDD, rel=1e-9)
        # 10-90 time: solve crossings of the analytic ramp.
        t10 = stim.start_time() + 0.1 * stim.ramp_duration()
        t90 = stim.start_time() + 0.9 * stim.ramp_duration()
        assert stim.voltage(t10) == pytest.approx(0.1 * VDD, rel=1e-9)
        assert t90 - t10 == pytest.approx(0.8e-9, rel=1e-9)

    def test_falling_transition(self):
        stim = RampStimulus.transition(False, 1e-9, 0.4e-9, VDD)
        assert stim.rising is False
        assert stim.voltage(-1e-9) == VDD
        assert stim.voltage(1e-9) == pytest.approx(0.5 * VDD)
        assert stim.voltage(5e-9) == 0.0

    def test_nonpositive_transition_time_rejected(self):
        with pytest.raises(ValueError):
            RampStimulus.transition(True, 0.0, 0.0, VDD)

    def test_clipping_outside_ramp(self):
        stim = RampStimulus.transition(True, 0.0, 1e-9, VDD)
        assert stim.voltage(-1.0) == 0.0
        assert stim.voltage(1.0) == VDD

    @given(
        arrival=st.floats(min_value=-5e-9, max_value=5e-9),
        ttime=st.floats(min_value=1e-12, max_value=5e-9),
        rising=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_ramp_is_monotone_and_bounded(self, arrival, ttime, rising):
        stim = RampStimulus.transition(rising, arrival, ttime, VDD)
        samples = [stim.voltage(arrival + k * ttime) for k in np.linspace(-3, 3, 41)]
        diffs = np.diff(samples)
        assert all(v >= -1e-12 for v in (diffs if rising else -diffs))
        assert all(-1e-12 <= v <= VDD + 1e-12 for v in samples)

    def test_span_of_stimuli(self):
        a = RampStimulus.transition(True, 1e-9, 0.8e-9, VDD)
        b = RampStimulus.transition(False, 3e-9, 0.8e-9, VDD)
        c = RampStimulus.steady(1, VDD)
        start, end = span_of_stimuli([a, b, c])
        assert start == pytest.approx(a.start_time())
        assert end == pytest.approx(b.end_time())

    def test_span_with_no_transitions(self):
        assert span_of_stimuli([RampStimulus.steady(0, VDD)]) == (0.0, 0.0)


class TestRampMath:
    def test_ramp_duration_from_ten_ninety(self):
        stim = RampStimulus.transition(True, 0.0, 0.8e-9, VDD)
        assert stim.ramp_duration() == pytest.approx(1e-9, rel=1e-9)

    def test_start_end_symmetric_about_arrival(self):
        stim = RampStimulus.transition(True, 2e-9, 0.8e-9, VDD)
        mid = 0.5 * (stim.start_time() + stim.end_time())
        assert mid == pytest.approx(2e-9, abs=1e-15)
        assert math.isclose(
            stim.end_time() - stim.start_time(), stim.ramp_duration()
        )
