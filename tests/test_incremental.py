"""Tests of incremental re-timing and trial batches.

The contract under test is *bit-identity*: after any edit sequence,
:meth:`repro.sta.incremental.IncrementalAnalyzer.retime` must leave
every line's windows bitwise-equal to a fresh scalar analysis of the
mutated circuit, and every :meth:`~repro.sta.incremental
.IncrementalAnalyzer.try_edits` column must equal a fresh analysis of
the circuit with only that one edit applied.
"""

import pytest

from repro.circuit import Circuit, load_packaged_bench, parse_bench
from repro.models import VShapeModel
from repro.sta import (
    IncrementalAnalyzer,
    PerfConfig,
    StaConfig,
    TimingAnalyzer,
    TrialEdit,
)
from repro.sta.cache import PropagationCache
from repro.sta.incremental import _timings_equal

#: Reference configuration: no kernels, no memo — the plain definition.
SCALAR = PerfConfig(batched_kernels=False, memo_enabled=False)

ENGINES = ("gate", "level")


def _incremental(circuit, library, engine):
    analyzer = TimingAnalyzer(
        circuit, library, VShapeModel(), StaConfig(),
        perf=PerfConfig(engine=engine),
    )
    return IncrementalAnalyzer(analyzer)


def _fresh_timings(circuit, library, perf=SCALAR):
    """Analyze a rebuilt copy of ``circuit`` from scratch."""
    rebuilt = Circuit.from_dict(circuit.to_dict())
    analyzer = TimingAnalyzer(
        rebuilt, library, VShapeModel(), StaConfig(), perf=perf
    )
    return analyzer.analyze()


def _assert_all_lines_equal(circuit, result, reference):
    for line in circuit.lines:
        assert _timings_equal(result.line(line), reference.line(line)), line


def _edit_script(circuit):
    """A deterministic mixed edit sequence valid on any packaged bench."""
    gates = sorted(circuit.gates)
    two_in = next(
        g for g in gates if circuit.gates[g].n_inputs == 2
    )
    target = next(
        g for g in gates
        if g != two_in and circuit.gates[g].n_inputs >= 2
    )
    # A PI the target does not already read cannot create a cycle.
    new_src = next(
        pi for pi in circuit.inputs
        if pi not in circuit.gates[target].inputs
    )
    return [
        ("resize", gates[0], 2.0, None),
        ("swap", two_in, "nor", None),
        ("resize", gates[-1], 0.5, None),
        ("rewire", target, new_src, 0),
        ("resize", gates[0], 2.0, None),  # no-op resize must still work
    ]


def _apply(circuit, edit):
    op, line, value, pin = edit
    if op == "resize":
        circuit.resize_gate(line, value)
    elif op == "swap":
        circuit.swap_cell(line, value)
    else:
        circuit.rewire_input(line, pin, value)


class TestRetime:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_fresh_after_each_edit(self, library, engine):
        circuit = load_packaged_bench("c17")
        incr = _incremental(circuit, library, engine)
        incr.analyze()
        for edit in _edit_script(circuit):
            _apply(circuit, edit)
            result = incr.retime()
            reference = _fresh_timings(circuit, library)
            _assert_all_lines_equal(circuit, result, reference)

    def test_matches_fresh_on_c432s_level(self, library):
        circuit = load_packaged_bench("c432s")
        incr = _incremental(circuit, library, "level")
        incr.analyze()
        for edit in _edit_script(circuit):
            _apply(circuit, edit)
        result = incr.retime()
        reference = _fresh_timings(circuit, library)
        _assert_all_lines_equal(circuit, result, reference)

    def test_full_pass_after_patched_edits_matches_fresh(self, library):
        # Coefficient edits are patched into the compiled SoA arrays in
        # place; a later *full* batched pass must still be bit-identical
        # to a fresh scalar analysis (i.e. the patch really updated the
        # compiled form, not just the incremental window state).
        circuit = load_packaged_bench("c17")
        incr = _incremental(circuit, library, "level")
        incr.analyze()
        incr.resize_gate(sorted(circuit.gates)[0], 3.3)
        result = incr.analyzer.analyze()
        reference = _fresh_timings(circuit, library)
        _assert_all_lines_equal(circuit, result, reference)


class TestTryEdits:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_columns_match_fresh_variants(self, library, engine):
        circuit = load_packaged_bench("c17")
        incr = _incremental(circuit, library, engine)
        incr.analyze()
        gates = sorted(circuit.gates)
        two_in = next(g for g in gates if circuit.gates[g].n_inputs == 2)
        edits = [
            TrialEdit("resize", gates[0], 0.5),
            TrialEdit("resize", gates[0], 2.0),
            TrialEdit("resize", gates[-1], 4.0),
            TrialEdit("swap", two_in, "nor"),
        ]
        trial = incr.try_edits(edits)
        assert trial.n_trials == len(edits)
        for k, e in enumerate(edits):
            variant = Circuit.from_dict(circuit.to_dict())
            _apply(variant, (e.op, e.line, e.value, None))
            reference = TimingAnalyzer(
                variant, library, VShapeModel(), StaConfig(), perf=SCALAR
            ).analyze()
            for line in variant.lines:
                assert _timings_equal(
                    trial.line_timing(line, k), reference.line(line)
                ), f"k={k} {line}"
            assert trial.max_arrivals()[k] == reference.output_max_arrival()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_master_state_is_untouched(self, library, engine):
        circuit = load_packaged_bench("c17")
        incr = _incremental(circuit, library, engine)
        incr.analyze()
        before = {line: incr.result().line(line) for line in circuit.lines}
        sizes_before = {g: circuit.gates[g].size for g in circuit.gates}
        incr.try_edits([
            TrialEdit("resize", g, 2.0) for g in sorted(circuit.gates)[:3]
        ])
        assert {g: circuit.gates[g].size for g in circuit.gates} == sizes_before
        after = incr.result()
        for line in circuit.lines:
            assert _timings_equal(after.line(line), before[line]), line

    def test_cross_feeding_fanin_drivers(self, library):
        # Regression: resizing g10 re-loads both g2 and g9, and g2 feeds
        # g9 through g5 — so g9's seeded trial value goes stale once
        # g2's change propagates, and must be *recomputed* mid-sweep
        # with its trial load (not restored from the seed snapshot).
        circuit = parse_bench(
            """
            INPUT(a)
            INPUT(b)
            INPUT(c)
            OUTPUT(g10)
            g2 = NAND(a, b)
            g5 = NOT(g2)
            g9 = NAND(g5, c)
            g10 = NAND(g2, g9)
            """,
            name="crossfeed",
        )
        incr = _incremental(circuit, library, "level")
        incr.analyze()
        edits = [TrialEdit("resize", "g10", s) for s in (0.5, 2.0)]
        trial = incr.try_edits(edits)
        for k, e in enumerate(edits):
            variant = Circuit.from_dict(circuit.to_dict())
            variant.resize_gate(e.line, e.value)
            reference = TimingAnalyzer(
                variant, library, VShapeModel(), StaConfig(), perf=SCALAR
            ).analyze()
            for line in variant.lines:
                assert _timings_equal(
                    trial.line_timing(line, k), reference.line(line)
                ), f"k={k} {line}"

    def test_rejects_empty_and_structural_edits(self, library):
        circuit = load_packaged_bench("c17")
        incr = _incremental(circuit, library, "level")
        incr.analyze()
        with pytest.raises(ValueError):
            incr.try_edits([])
        with pytest.raises(ValueError):
            incr.try_edits([TrialEdit("rewire", "G10", "G1")])


class TestMemoEpoch:
    def test_epoch_distinguishes_cache_keys(self):
        # Regression: a circuit mutated behind the analyzer must never
        # be served a memo entry recorded before the edit — the edit
        # epoch is part of both the hash key and the exact tag.
        from repro.sta.windows import DirWindow, LineTiming

        cache = PropagationCache(max_entries=8, quantum=1e-15)
        timing = LineTiming(
            rise=DirWindow(1e-10, 2e-10, 5e-11, 8e-11),
            fall=DirWindow(1e-10, 2e-10, 5e-11, 8e-11),
        )
        key0, tag0 = cache.key_for("nand2", 1e-14, [timing], epoch=0)
        key1, tag1 = cache.key_for("nand2", 1e-14, [timing], epoch=1)
        assert key0 != key1
        assert tag0 != tag1
        cache.store(key0, tag0, timing)
        assert cache.lookup(key0, tag0) is not None
        assert cache.lookup(key1, tag1) is None

    def test_analyzer_epoch_tracks_circuit_edits(self, library):
        circuit = load_packaged_bench("c17")
        analyzer = TimingAnalyzer(
            circuit, library, VShapeModel(), StaConfig(),
            perf=PerfConfig(engine="gate"),
        )
        first = analyzer.analyze()
        target = sorted(circuit.gates)[0]
        circuit.resize_gate(target, 4.0)
        second = analyzer.analyze()
        reference = _fresh_timings(circuit, library)
        _assert_all_lines_equal(circuit, second, reference)
        assert not _timings_equal(
            first.line(target), second.line(target)
        )
