"""Cross-cutting property-based tests (hypothesis).

These encode the invariants the whole system leans on:

* the V-shape and Λ-shape are valid piecewise-linear interpolants
  (bounded by their anchors, continuous, saturating);
* STA window propagation produces ordered windows and is monotone in
  its inputs (wider inputs never shrink outputs);
* two-frame implication is sound (any implied definite value holds in
  every consistent completion) on random small circuits;
* bench round-trips preserve functionality on random circuits.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    GeneratorConfig,
    generate_circuit,
    parse_bench,
    write_bench,
)
from repro.itr import TwoFrameImplicator, TwoFrame, initial_assignment
from repro.itr.implication import Conflict
from repro.models import VShapeModel
from repro.sta.corners import CtrlInput, ctrl_response_window
from repro.sta.windows import DirWindow
from tests.synthetic import REF_LOAD, make_nand

NS = 1e-9

times = st.floats(min_value=0.08e-9, max_value=1.8e-9)
arrivals = st.floats(min_value=0.0, max_value=5e-9)
spans = st.floats(min_value=0.0, max_value=2e-9)


def window(a_s, width, t_s, t_width):
    return DirWindow(a_s, a_s + width, t_s, t_s + t_width)


class TestVShapeProperties:
    @given(t_p=times, t_q=times, s1=st.floats(-2e-9, 2e-9),
           s2=st.floats(-2e-9, 2e-9))
    @settings(max_examples=100, deadline=None)
    def test_lipschitz_in_skew(self, t_p, t_q, s1, s2):
        """|d(s1) - d(s2)| <= L * |s1 - s2| with a finite slope L."""
        shape = VShapeModel().vshape(make_nand(2), 0, 1, t_p, t_q, REF_LOAD)
        slope = max(
            abs(shape.dr_p - shape.d0) / shape.s_pos,
            abs(shape.dr_q - shape.d0) / shape.s_neg,
        )
        assert abs(shape.delay(s1) - shape.delay(s2)) <= (
            slope * abs(s1 - s2) + 1e-15
        )

    @given(t_p=times, t_q=times)
    @settings(max_examples=60, deadline=None)
    def test_saturation_beyond_anchors(self, t_p, t_q):
        shape = VShapeModel().vshape(make_nand(2), 0, 1, t_p, t_q, REF_LOAD)
        assert shape.delay(shape.s_pos) == pytest.approx(shape.dr_p)
        assert shape.delay(shape.s_pos * 3) == shape.dr_p
        assert shape.delay(-shape.s_neg * 3) == shape.dr_q

    @given(t_p=times, t_q=times, skew=st.floats(-2e-9, 2e-9))
    @settings(max_examples=100, deadline=None)
    def test_trans_vshape_bounded(self, t_p, t_q, skew):
        shape = VShapeModel().trans_vshape(
            make_nand(2), 0, 1, t_p, t_q, REF_LOAD
        )
        value = shape.trans(skew)
        assert shape.min_trans() - 1e-15 <= value
        assert value <= max(shape.t_p, shape.t_q) + 1e-15


class TestStaWindowProperties:
    @given(
        a1=arrivals, w1=spans, a2=arrivals, w2=spans,
        t1=times, t2=times,
    )
    @settings(max_examples=80, deadline=None)
    def test_output_window_ordered(self, a1, w1, a2, w2, t1, t2):
        cell = make_nand(2)
        inputs = [
            CtrlInput(0, window(a1, w1, t1, 0.1 * NS)),
            CtrlInput(1, window(a2, w2, t2, 0.1 * NS)),
        ]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        assert out.a_s <= out.a_l + 1e-15
        assert 0 < out.t_s <= out.t_l + 1e-15

    @given(
        a1=arrivals, w1=spans, a2=arrivals, w2=spans, extra=spans,
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_input_windows(self, a1, w1, a2, w2, extra):
        """Widening an input window can only widen the output window."""
        cell = make_nand(2)
        t = 0.4 * NS
        narrow = [
            CtrlInput(0, window(a1, w1, t, 0.0)),
            CtrlInput(1, window(a2, w2, t, 0.0)),
        ]
        wide = [
            CtrlInput(0, window(a1, w1 + extra, t, 0.0)),
            CtrlInput(1, window(a2, w2, t, 0.0)),
        ]
        model = VShapeModel()
        out_narrow = ctrl_response_window(cell, model, narrow, REF_LOAD)
        out_wide = ctrl_response_window(cell, model, wide, REF_LOAD)
        assert out_wide.a_s <= out_narrow.a_s + 1e-15
        assert out_wide.a_l >= out_narrow.a_l - 1e-15

    @given(a1=arrivals, a2=arrivals, t1=times, t2=times)
    @settings(max_examples=60, deadline=None)
    def test_point_windows_match_model_evaluation(self, a1, a2, t1, t2):
        """Degenerate windows: STA == direct model evaluation."""
        from repro.models import InputEvent

        cell = make_nand(2)
        model = VShapeModel()
        inputs = [
            CtrlInput(0, DirWindow(a1, a1, t1, t1)),
            CtrlInput(1, DirWindow(a2, a2, t2, t2)),
        ]
        out = ctrl_response_window(cell, model, inputs, REF_LOAD)
        events = [
            InputEvent(0, a1, t1, False),
            InputEvent(1, a2, t2, False),
        ]
        delay, _ = model.controlling_response(cell, events, REF_LOAD)
        arrival = min(a1, a2) + delay
        # The window's lower bound is the best pair alignment, which for
        # point windows is exactly the model's arrival; the upper bound
        # is the conservative single-switcher rule.
        assert out.a_s <= arrival + 1e-15
        assert arrival <= out.a_l + 1e-15


def random_small_circuit(seed):
    return generate_circuit(
        "prop",
        GeneratorConfig(n_inputs=4, n_outputs=2, n_gates=10, seed=seed),
    )


class TestImplicationSoundness:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        line_index=st.integers(min_value=0, max_value=30),
        literal=st.sampled_from(["01", "10", "0x", "1x", "11", "00"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_implied_values_hold_in_all_completions(
        self, seed, line_index, literal
    ):
        circuit = random_small_circuit(seed)
        lines = circuit.lines
        line = lines[line_index % len(lines)]
        engine = TwoFrameImplicator(circuit)
        try:
            values = engine.assign(
                initial_assignment(circuit), line, TwoFrame.parse(literal)
            )
        except Conflict:
            return  # detected inconsistencies are fine
        # Soundness: implication must never eliminate a completion that
        # genuinely realizes the seed literal.  (Completeness is NOT
        # guaranteed — an unsatisfiable seed, e.g. forcing a transition
        # on a line that is structurally constant, may go undetected,
        # in which case no realizing completion exists and the check is
        # vacuous.)
        for frame in (1, 2):
            def framed(value):
                return value.v1 if frame == 1 else value.v2

            seed_bit = framed(TwoFrame.parse(literal))
            for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
                assignment = dict(zip(circuit.inputs, bits))
                evaluated = circuit.evaluate(assignment)
                if seed_bit is not None and evaluated[line] != seed_bit:
                    continue  # completion does not realize the seed
                assert all(
                    framed(values[ln]) in (None, evaluated[ln])
                    for ln in circuit.lines
                ), (
                    f"frame {frame}: implication contradicts the "
                    f"realizing completion {bits}"
                )


class TestBenchRoundTripProperty:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_function(self, seed):
        circuit = random_small_circuit(seed)
        again = parse_bench(write_bench(circuit), name="again")
        for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
            assignment = dict(zip(circuit.inputs, bits))
            assert circuit.evaluate(assignment) == again.evaluate(assignment)
