"""Unit and property tests for the empirical formula forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterize.formulas import (
    CubeRootSurface,
    LinForm2,
    QuadForm2,
    QuadPoly1,
    refine_minimum,
    saturation_crossing,
)

NS = 1e-9


class TestQuadPoly1:
    def test_exact_fit_recovers_coefficients(self):
        truth = QuadPoly1(-2e8 / NS, 0.4, 0.05 * NS)
        ts = np.linspace(0.1 * NS, 2 * NS, 8)
        poly = QuadPoly1.fit(ts, [truth(t) for t in ts])
        for t in np.linspace(0.05 * NS, 2.5 * NS, 11):
            assert poly(t) == pytest.approx(truth(t), rel=1e-6, abs=1e-18)

    def test_fit_requires_three_points(self):
        with pytest.raises(ValueError):
            QuadPoly1.fit([1e-9, 2e-9], [1.0, 2.0])

    def test_peak_of_bitonic(self):
        # Peak at T = 1 ns.
        poly = QuadPoly1(-1e8 / NS / NS * NS, 0.2, 0.0)
        peak = poly.peak_location()
        assert peak is not None
        assert poly(peak) >= poly(peak * 0.9)
        assert poly(peak) >= poly(peak * 1.1)

    def test_monotone_has_no_peak(self):
        assert QuadPoly1(0.0, 0.5, 0.1 * NS).peak_location() is None
        assert QuadPoly1(1e10, 0.5, 0.1 * NS).peak_location() is None

    def test_max_over_interval_interior_peak(self):
        poly = QuadPoly1(-1.0, 2.0, 0.0)  # peak at t=1
        arg, val = poly.max_over(0.0, 3.0)
        assert arg == pytest.approx(1.0)
        assert val == pytest.approx(1.0)

    def test_max_over_interval_endpoint(self):
        poly = QuadPoly1(-1.0, 2.0, 0.0)
        arg, val = poly.max_over(2.0, 3.0)  # peak left of interval
        assert arg == 2.0
        assert val == pytest.approx(poly(2.0))

    def test_min_over_interval_convex(self):
        poly = QuadPoly1(1.0, -2.0, 3.0)  # valley at t=1
        arg, val = poly.min_over(0.0, 4.0)
        assert arg == pytest.approx(1.0)
        assert val == pytest.approx(2.0)

    @given(
        a2=st.floats(min_value=-5, max_value=5),
        a1=st.floats(min_value=-5, max_value=5),
        a0=st.floats(min_value=-5, max_value=5),
        lo=st.floats(min_value=0.0, max_value=1.0),
        width=st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_interval_extremes_bound_samples(self, a2, a1, a0, lo, width):
        poly = QuadPoly1(a2, a1, a0)
        hi = lo + width
        _, vmax = poly.max_over(lo, hi)
        _, vmin = poly.min_over(lo, hi)
        for t in np.linspace(lo, hi, 17):
            assert vmin - 1e-9 <= poly(t) <= vmax + 1e-9

    def test_rms_error_zero_for_exact(self):
        poly = QuadPoly1(1.0, 2.0, 3.0)
        ts = [0.0, 1.0, 2.0, 3.0]
        assert poly.rms_error(ts, [poly(t) for t in ts]) == pytest.approx(0.0, abs=1e-9)


class TestCubeRootSurface:
    def test_exact_fit(self):
        truth = CubeRootSurface(2e-7, -3e-8, 1e-8, 0.02 * NS)
        txs, tys, zs = [], [], []
        for tx in np.linspace(0.1 * NS, 1.5 * NS, 5):
            for ty in np.linspace(0.1 * NS, 1.5 * NS, 5):
                txs.append(tx)
                tys.append(ty)
                zs.append(truth(tx, ty))
        fit = CubeRootSurface.fit(txs, tys, zs)
        for tx, ty, z in zip(txs, tys, zs):
            assert fit(tx, ty) == pytest.approx(z, rel=1e-6, abs=1e-20)

    def test_fit_requires_four_points(self):
        with pytest.raises(ValueError):
            CubeRootSurface.fit([1e-9] * 3, [1e-9] * 3, [1.0] * 3)

    def test_paper_form_round_trip(self):
        surf = CubeRootSurface(2e-7, -3e-8, 1e-8, 0.02 * NS)
        k20, k21, k22, k23, k24 = surf.to_paper_form()
        for tx in (0.2 * NS, 0.7 * NS):
            for ty in (0.3 * NS, 1.1 * NS):
                x = tx ** (1 / 3)
                y = ty ** (1 / 3)
                paper = (k20 * x + k21) * (k22 * y + k23) + k24
                assert paper == pytest.approx(surf(tx, ty), rel=1e-9)

    def test_degenerate_paper_form_raises(self):
        with pytest.raises(ValueError):
            CubeRootSurface(0.0, 1.0, 1.0, 1.0).to_paper_form()

    def test_rms_error(self):
        surf = CubeRootSurface(0.0, 0.0, 0.0, 1.0)
        assert surf.rms_error([1e-9], [1e-9], [2.0]) == pytest.approx(1.0)


class TestQuadForm2:
    def test_exact_fit(self):
        truth = QuadForm2(1e8, -2e8, 5e7, 0.3, -0.1, 0.05 * NS)
        txs, tys, zs = [], [], []
        for tx in np.linspace(0.1 * NS, 1.5 * NS, 4):
            for ty in np.linspace(0.1 * NS, 1.5 * NS, 4):
                txs.append(tx)
                tys.append(ty)
                zs.append(truth(tx, ty))
        fit = QuadForm2.fit(txs, tys, zs)
        for tx, ty, z in zip(txs, tys, zs):
            assert fit(tx, ty) == pytest.approx(z, rel=1e-6, abs=1e-20)

    def test_fit_requires_six_points(self):
        with pytest.raises(ValueError):
            QuadForm2.fit([1e-9] * 5, [1e-9] * 5, [1.0] * 5)

    def test_coefficients_order_matches_paper(self):
        # SR = K30*Tx^2 + K31*Ty^2 + K32*TxTy + K33*Tx + K34*Ty + K35
        form = QuadForm2(1, 2, 3, 4, 5, 6)
        assert form(1.0, 1.0) == 1 + 2 + 3 + 4 + 5 + 6
        assert form(2.0, 0.0) == 1 * 4 + 4 * 2 + 6


class TestLinForm2:
    def test_exact_fit(self):
        truth = LinForm2(0.01 * NS, 0.2, -0.1)
        txs = [0.1 * NS, 0.5 * NS, 1.0 * NS, 1.5 * NS]
        tys = [1.2 * NS, 0.3 * NS, 0.8 * NS, 0.1 * NS]
        zs = [truth(a, b) for a, b in zip(txs, tys)]
        fit = LinForm2.fit(txs, tys, zs)
        for a, b, z in zip(txs, tys, zs):
            assert fit(a, b) == pytest.approx(z, rel=1e-9, abs=1e-22)

    def test_requires_three(self):
        with pytest.raises(ValueError):
            LinForm2.fit([1.0], [1.0], [1.0])


class TestRefineMinimum:
    def test_exact_parabola_vertex(self):
        xs = np.linspace(-1, 1, 11)
        ys = (xs - 0.123) ** 2 + 0.5
        x_min, y_min = refine_minimum(xs, ys)
        assert x_min == pytest.approx(0.123, abs=1e-9)
        assert y_min == pytest.approx(0.5, abs=1e-9)

    def test_boundary_minimum_returned_raw(self):
        xs = [0.0, 1.0, 2.0]
        ys = [0.1, 0.5, 0.9]
        assert refine_minimum(xs, ys) == (0.0, 0.1)

    def test_flat_curve(self):
        xs = [0.0, 1.0, 2.0]
        ys = [1.0, 1.0, 1.0]
        x_min, y_min = refine_minimum(xs, ys)
        assert y_min == 1.0


class TestSaturationCrossing:
    def test_linear_rise_to_plateau(self):
        xs = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        ys = [0.0, 0.5, 1.0, 1.0, 1.0, 1.0]
        crossing = saturation_crossing(xs, ys, floor=0.0, ceiling=1.0,
                                       fraction=0.98)
        assert crossing == pytest.approx(0.196, abs=1e-6)

    def test_never_saturating_returns_last(self):
        xs = [0.0, 1.0, 2.0]
        ys = [0.0, 0.1, 0.2]
        assert saturation_crossing(xs, ys, 0.0, 1.0) == 2.0

    def test_already_saturated_returns_first(self):
        xs = [0.0, 1.0]
        ys = [1.0, 1.0]
        assert saturation_crossing(xs, ys, 0.0, 1.0) == 0.0
