"""Cross-process telemetry: capture, deterministic merge, exporters.

The contract under test is the one the parallel runners rely on
(see ``repro.obs.merge``): worker registries snapshot into picklable
payloads, the parent merge is deterministic and scheduler-independent,
and an instrumented ``--jobs N`` run reports counter totals identical
to ``--jobs 1`` for every pooled subsystem (characterize, ATPG, MC).
"""

import json

import pytest

from repro.atpg import AtpgConfig, CrosstalkAtpg, generate_fault_list
from repro.characterize import CharacterizationConfig, characterize_library
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    build_manifest,
    chrome_trace,
    current_manifest,
    manifest_from_trace,
    read_trace,
    self_time_profile,
    snapshot_from_trace,
    snapshot_to_prom,
    use_registry,
    write_chrome_trace,
    write_trace,
)
from repro.obs.manifest import MANIFEST_FIELDS, set_run_context
from repro.obs.merge import (
    assign_lanes,
    capture_and_reset,
    capture_registry,
    init_worker_obs,
    merge_payloads,
)
from repro.obs.registry import Histogram, get_registry, set_registry
from repro.stat import run_mc
from repro.tech import GENERIC_05UM as TECH

NS = 1e-9

FAST = CharacterizationConfig(
    t_grid=(0.15 * NS, 0.4 * NS, 0.9 * NS),
    pair_t_grid=(0.2 * NS, 0.5 * NS, 1.0 * NS),
    skews_per_side=3,
    load_multipliers=(1.0, 2.0),
)


def worker_payload(pid, counters=(), gauges=(), hist=(), spans=()):
    """A payload as a worker would produce it, with a forced pid."""
    reg = MetricsRegistry()
    for name, value in counters:
        reg.counter(name).inc(value)
    for name, value in gauges:
        reg.gauge(name).set(value)
    for name, values in hist:
        h = reg.histogram(name)
        for v in values:
            h.observe(v)
    for name in spans:
        with reg.span(name):
            pass
    payload = capture_registry(reg)
    payload["pid"] = pid
    return payload


def non_pool_counters(registry):
    """Counter values excluding pool-dispatch bookkeeping.

    ``*.pool.*`` counters exist only on the parallel path by design
    (they count dispatches, not work), so parity comparisons skip them.
    """
    return {
        name: c.value
        for name, c in registry.counters.items()
        if ".pool." not in name and c.value
    }


def assert_counter_parity(serial_reg, pooled_reg):
    """Pooled counter totals must equal serial, modulo cache locality.

    The STA propagation memo is per-process, so process isolation can
    shift lookups from hits to misses (a worker never sees the memo
    another worker warmed).  The work counters count real corner
    searches — a memo hit does not bump them — so they shift with
    locality the same way.  The workload-determined invariants that
    must match exactly are the *lookup* totals: ``hits + misses``
    (== ``hits + gates_evaluated`` when every analyzer memoizes) and
    ``corner_calls + 2 * hits``.
    """

    def split(reg):
        counters = non_pool_counters(reg)
        hits = counters.pop("sta.memo.hits", 0)
        misses = counters.pop("sta.memo.misses", 0)
        gates = counters.pop("sta.gates_evaluated", 0)
        corners = counters.pop("sta.corner_calls", 0)
        return counters, (hits + misses, gates + hits, corners + 2 * hits)

    serial, serial_totals = split(serial_reg)
    pooled, pooled_totals = split(pooled_reg)
    assert serial_totals == pooled_totals
    assert serial == pooled


class TestWorkerCapture:
    def test_disabled_worker_captures_none(self):
        previous = get_registry()
        try:
            registry = init_worker_obs(False)
            assert registry is NULL_REGISTRY
            assert capture_registry(registry) is None
            assert capture_and_reset(registry) is None
        finally:
            set_registry(previous)

    def test_enabled_worker_gets_fresh_registry(self):
        previous = get_registry()
        try:
            registry = init_worker_obs(True)
            assert registry.enabled
            assert registry is get_registry()
            assert registry is not previous
        finally:
            set_registry(previous)

    def test_capture_and_reset_yields_disjoint_deltas(self):
        reg = MetricsRegistry()
        handle = reg.counter("sim.steps")
        handle.inc(3)
        first = capture_and_reset(reg)
        handle.inc(4)  # construction-time handle survives the reset
        second = capture_and_reset(reg)
        assert first["counters"] == {"sim.steps": 3}
        assert second["counters"] == {"sim.steps": 4}

    def test_capture_keeps_raw_histogram_values(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.histogram("x").observe(v)
        payload = capture_registry(reg)
        assert payload["histograms"]["x"]["values"] == [3.0, 1.0, 2.0]


class TestMerge:
    def test_counters_sum_across_workers(self):
        reg = MetricsRegistry()
        reg.counter("atpg.decisions").inc(5)
        merge_payloads(reg, [
            worker_payload(201, counters=[("atpg.decisions", 7)]),
            worker_payload(202, counters=[("atpg.decisions", 11)]),
        ])
        assert reg.counters["atpg.decisions"].value == 23

    def test_lanes_are_dense_and_pid_sorted(self):
        payloads = [worker_payload(pid) for pid in (3010, 144, 970)]
        assert assign_lanes(payloads) == {144: 1, 970: 2, 3010: 3}
        assert assign_lanes([None, payloads[0]]) == {3010: 1}

    def test_gauges_last_write_by_lane(self):
        reg = MetricsRegistry()
        # Submission order has the higher pid first; the lane order
        # (sorted by pid) must win regardless.
        merge_payloads(reg, [
            worker_payload(999, gauges=[("sta.memo.size", 50.0)]),
            worker_payload(111, gauges=[("sta.memo.size", 8.0)]),
        ])
        assert reg.gauges["sta.memo.size"].value == 50.0

    def test_histograms_concatenate_with_exact_percentiles(self):
        reg = MetricsRegistry()
        parent = reg.histogram("job_s")
        parent.observe(1.0)
        chunks = [[4.0, 2.0], [9.0, 3.0, 5.0]]
        merge_payloads(reg, [
            worker_payload(300 + i, hist=[("job_s", chunk)])
            for i, chunk in enumerate(chunks)
        ])
        reference = Histogram("ref")
        for v in [1.0] + [v for chunk in chunks for v in chunk]:
            reference.observe(v)
        assert parent.summary() == reference.summary()

    def test_spans_rerooted_under_worker_lane(self):
        reg = MetricsRegistry()
        with reg.span("parent.phase"):
            pass
        merge_payloads(reg, [worker_payload(42, spans=["atpg.fault"])])
        worker_spans = [s for s in reg.spans if s.lane == 1]
        assert len(worker_spans) == 1
        span = worker_spans[0]
        assert span.path == "worker/1/atpg.fault"
        assert span.depth == 1
        parent_span = next(s for s in reg.spans if s.lane == 0)
        assert parent_span.path == "parent.phase"

    def test_merge_skips_none_payloads(self):
        reg = MetricsRegistry()
        assert merge_payloads(reg, [None, None]) == 0
        assert merge_payloads(
            reg, [None, worker_payload(9, counters=[("c", 1)])]
        ) == 1
        assert reg.counters["c"].value == 1

    def test_merge_into_disabled_registry_is_noop(self):
        assert merge_payloads(
            NULL_REGISTRY, [worker_payload(1, counters=[("c", 1)])]
        ) == 0

    def test_merge_is_deterministic_in_payload_order(self):
        def merged(payloads):
            reg = MetricsRegistry()
            merge_payloads(reg, payloads)
            return reg.snapshot()

        payloads = [
            worker_payload(77, counters=[("a", 1)], hist=[("h", [2.0])]),
            worker_payload(78, counters=[("a", 2)], hist=[("h", [1.0])]),
        ]
        # Same payload list => identical snapshot, run after run.
        assert merged(payloads) == merged(payloads)


class TestHistogramReservoirCap:
    def test_default_is_unbounded(self):
        h = Histogram("h")
        for i in range(1000):
            h.observe(float(i))
        assert len(h.values) == 1000
        assert "overflow" not in h.summary()

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", cap=0)

    def test_overflow_keeps_count_sum_min_max(self):
        h = Histogram("h", cap=3)
        for v in (5.0, 1.0, 3.0, 9.0, 0.5):
            h.observe(v)
        digest = h.summary()
        assert digest["count"] == 5
        assert digest["total"] == pytest.approx(18.5)
        assert digest["min"] == 0.5
        assert digest["max"] == 9.0
        assert digest["overflow"] == 2
        assert len(h.values) == 3  # reservoir bounded

    def test_percentiles_exact_below_cap(self):
        capped = Histogram("a", cap=100)
        exact = Histogram("b")
        for v in range(50):
            capped.observe(float(v))
            exact.observe(float(v))
        assert capped.summary() == {
            key: value
            for key, value in exact.summary().items()
        }

    def test_registry_first_caller_wins_on_cap(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", cap=2)
        assert reg.histogram("h") is h
        assert h.cap == 2

    def test_reset_clears_overflow_state(self):
        h = Histogram("h", cap=1)
        h.observe(1.0)
        h.observe(2.0)
        reg = MetricsRegistry()
        reg.histograms["h"] = h
        reg.reset()
        assert h.count == 0
        assert h.overflow_count == 0
        assert h._lo is None and h._hi is None

    def test_null_registry_accepts_cap(self):
        NULL_REGISTRY.histogram("h", cap=5).observe(1.0)


class TestMergedTraceRoundTrip:
    def _merged_registry(self):
        reg = MetricsRegistry()
        reg.counter("atpg.faults").inc(4)
        with reg.span("cli.atpg"):
            pass
        merge_payloads(reg, [
            worker_payload(
                501,
                counters=[("atpg.decisions", 3)],
                hist=[("atpg.fault_s", [0.25, 0.5])],
                spans=["atpg.fault"],
            ),
            worker_payload(
                502,
                counters=[("atpg.decisions", 5)],
                spans=["atpg.fault"],
            ),
        ])
        return reg

    def test_write_trace_snapshot_round_trip(self, tmp_path):
        reg = self._merged_registry()
        path = write_trace(reg, tmp_path / "merged.jsonl")
        events = read_trace(path)
        assert snapshot_from_trace(events) == reg.snapshot()

    def test_trace_spans_carry_lanes(self, tmp_path):
        reg = self._merged_registry()
        events = read_trace(write_trace(reg, tmp_path / "t.jsonl"))
        lanes = {e["lane"] for e in events if e["type"] == "span"}
        assert lanes == {0, 1, 2}

    def test_trace_embeds_complete_manifest(self, tmp_path):
        reg = self._merged_registry()
        events = read_trace(write_trace(reg, tmp_path / "t.jsonl"))
        manifest = manifest_from_trace(events)
        assert manifest is not None
        assert set(MANIFEST_FIELDS) <= set(manifest)

    def test_v1_trace_reads_back_laneless(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "version": 1}) + "\n"
            + json.dumps({
                "type": "span", "name": "run", "path": "run",
                "start_s": 0.0, "elapsed_s": 1.0, "depth": 0,
            }) + "\n"
            + json.dumps({"type": "counter", "name": "c", "value": 2}) + "\n"
        )
        events = read_trace(path)
        assert manifest_from_trace(events) is None
        assert snapshot_from_trace(events)["counters"] == {"c": 2}
        trace = chrome_trace(events)
        assert [e["tid"] for e in trace["traceEvents"]
                if e["ph"] == "X"] == [0]


class TestChromeExport:
    def test_one_thread_lane_per_worker(self):
        reg = MetricsRegistry()
        with reg.span("parent.work"):
            pass
        merge_payloads(reg, [
            worker_payload(601, spans=["job"]),
            worker_payload(602, spans=["job"]),
        ])
        trace = chrome_trace(reg)
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "parent", 1: "worker/1", 2: "worker/2"}
        x_tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert x_tids == {0, 1, 2}

    def test_written_file_is_valid_json(self, tmp_path):
        reg = MetricsRegistry()
        with reg.span("run"):
            pass
        out = write_chrome_trace(
            reg, tmp_path / "trace.chrome.json",
            manifest=build_manifest(command="test"),
        )
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["metadata"]["run_manifest"]["command"] == "test"
        event = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"]["path"] == "run"

    def test_self_time_subtracts_direct_children(self):
        events = [
            {"type": "span", "name": "inner", "path": "outer/inner",
             "start_s": 0.2, "elapsed_s": 0.3, "depth": 1, "lane": 0},
            {"type": "span", "name": "outer", "path": "outer",
             "start_s": 0.0, "elapsed_s": 1.0, "depth": 0, "lane": 0},
        ]
        rows = {r["path"]: r for r in self_time_profile(events)}
        assert rows["outer"]["self_s"] == pytest.approx(0.7)
        assert rows["outer"]["total_s"] == pytest.approx(1.0)
        assert rows["outer/inner"]["self_s"] == pytest.approx(0.3)

    def test_self_time_ignores_other_lanes(self):
        events = [
            {"type": "span", "name": "inner", "path": "outer/inner",
             "start_s": 0.2, "elapsed_s": 0.3, "depth": 1, "lane": 1},
            {"type": "span", "name": "outer", "path": "outer",
             "start_s": 0.0, "elapsed_s": 1.0, "depth": 0, "lane": 0},
        ]
        rows = {r["path"]: r for r in self_time_profile(events)}
        assert rows["outer"]["self_s"] == pytest.approx(1.0)


class TestPromExposition:
    def test_families_and_quantiles(self):
        reg = MetricsRegistry()
        reg.counter("atpg.decisions").inc(7)
        reg.gauge("sta.memo.size").set(42.0)
        h = reg.histogram("pool.job_s", cap=2)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = snapshot_to_prom(reg.snapshot())
        assert "# TYPE repro_atpg_decisions_total counter" in text
        assert "repro_atpg_decisions_total 7" in text
        assert "repro_sta_memo_size 42.0" in text
        assert '{quantile="0.5"}' in text
        assert "repro_pool_job_s_count 3" in text
        assert "repro_pool_job_s_overflow_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert snapshot_to_prom(MetricsRegistry().snapshot()) == ""


class TestManifest:
    def test_build_manifest_has_every_field(self):
        manifest = build_manifest(command="x", seeds=7, jobs=2)
        assert set(manifest) == set(MANIFEST_FIELDS)
        assert manifest["seeds"] == [7]
        assert manifest["python_version"]
        assert manifest["package_version"]

    def test_run_context_feeds_current_manifest(self):
        set_run_context(command="repro-sta mc", args=["mc", "c17"])
        try:
            manifest = current_manifest(circuit="c17")
            assert manifest["command"] == "repro-sta mc"
            assert manifest["args"] == ["mc", "c17"]
            assert manifest["circuit"] == "c17"
            assert manifest["wall_s"] is not None
            assert manifest["started_unix"] is not None
        finally:
            set_run_context()


@pytest.mark.slow
class TestPoolCounterParity:
    """Instrumented --jobs N must report the totals of --jobs 1."""

    def test_characterize_counters_match(self):
        cells = (("inv", 1),)
        with use_registry() as serial_reg:
            serial = characterize_library(TECH, cells, FAST, jobs=1)
        with use_registry() as pooled_reg:
            pooled = characterize_library(TECH, cells, FAST, jobs=4)
        assert (
            pooled_reg.counters["characterize.pool.jobs_dispatched"].value
            > 0
        )
        assert_counter_parity(serial_reg, pooled_reg)
        a, b = serial.to_dict(), pooled.to_dict()
        a["meta"].pop("jobs"), b["meta"].pop("jobs")
        assert json.dumps(a) == json.dumps(b)

    def test_atpg_counters_match(self, c17, library):
        faults = generate_fault_list(
            c17, 6, seed=1, delta=0.4 * NS, window=0.12 * NS
        )
        config = AtpgConfig(backtrack_limit=16)

        def run(jobs):
            with use_registry() as reg:
                atpg = CrosstalkAtpg(c17, library, config=config)
                summary = atpg.run_all(faults, jobs=jobs)
            return reg, summary

        serial_reg, serial = run(1)
        pooled_reg, pooled = run(4)
        assert [r.status for r in serial.results] == [
            r.status for r in pooled.results
        ]
        assert_counter_parity(serial_reg, pooled_reg)
        # The merged trace keeps one timeline per reporting worker.
        worker_lanes = {s.lane for s in pooled_reg.spans if s.lane > 0}
        assert worker_lanes
        assert all(
            s.path.startswith(f"worker/{s.lane}/")
            for s in pooled_reg.spans
            if s.lane > 0
        )

    def test_mc_counters_match(self, c17, library):
        def run(jobs):
            with use_registry() as reg:
                result = run_mc(
                    c17, library, samples=32, seed=3, jobs=jobs, block=8
                )
            return reg, result

        serial_reg, serial = run(1)
        pooled_reg, pooled = run(4)
        assert (serial.po_max == pooled.po_max).all()
        assert_counter_parity(serial_reg, pooled_reg)
        serial_hist = serial_reg.histograms["stat.mc.block_s"]
        pooled_hist = pooled_reg.histograms["stat.mc.block_s"]
        assert serial_hist.count == pooled_hist.count == 4
