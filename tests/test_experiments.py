"""Smoke tests for the experiment modules (full runs live in benchmarks/)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, fig01, fig02, mc_sta, table2
from repro.experiments.common import (
    ExperimentResult,
    max_abs_error,
    rms_error,
)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment="demo",
            title="Demo experiment",
            headers=["name", "value"],
            rows=[["alpha", 1.23456], ["beta", 2]],
            findings={"winner": "alpha", "margin": 0.5},
            paper_reference="paper says alpha wins",
        )

    def test_format_table_aligns_columns(self):
        table = self.make().format_table()
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.2346" in table
        assert len({len(line) for line in lines[:2]}) == 1

    def test_format_report_includes_findings_and_reference(self):
        report = self.make().format_report()
        assert "demo" in report
        assert "winner: alpha" in report
        assert "paper says alpha wins" in report

    def test_empty_rows_table(self):
        result = ExperimentResult("e", "t", ["a"], [])
        assert "a" in result.format_table()


class TestErrorHelpers:
    def test_max_abs_error(self):
        assert max_abs_error([1.0, 2.0], [1.5, 1.0]) == 1.0

    def test_rms_error(self):
        assert rms_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            (25.0 / 2) ** 0.5
        )


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "figure-1", "figure-2", "figure-5", "figure-10", "figure-11",
            "figure-12", "table-2", "section-7", "claims-3.5", "ablations",
            "extension-nonctrl", "extension-mc-sta", "extension-pvt",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_each_module_has_run(self):
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run)


class TestFastRuns:
    """Cheap parameterizations keep these in the regular test suite."""

    def test_fig01_runs_and_names_match(self):
        result = fig01.run(trans_time=0.3e-9)
        assert result.experiment == "figure-1"
        assert result.findings["speedup_ratio"] > 1.0

    def test_fig02_small(self):
        result = fig02.run(n_skews=5)
        assert result.findings["min_delay_at_zero_skew"]
        assert len(result.rows) == 5

    def test_mc_sta_small(self):
        result = mc_sta.run(bench="c17", samples=16)
        assert result.experiment == "extension-mc-sta"
        assert result.findings["sigma0_matches_deterministic"]
        assert result.findings["jobs_bit_identical"]
        delays = [row[1] for row in result.rows]
        assert delays == sorted(delays)

    def test_table2_single_circuit(self):
        result = table2.run(circuits=["c17"])
        assert result.rows[0][0] == "c17"
        assert result.rows[0][-1] > 1.0
