"""Tests for the transistor-level cells: logic function and delay phenomena."""

import itertools

import pytest

from repro.spice import GateCell, RampStimulus, simulate_gate
from repro.spice.gates import OUT_NODE, input_node
from repro.spice.solver import TransientSolver
from repro.tech import GENERIC_05UM as TECH

VDD = TECH.vdd


def static_output(cell, values):
    """DC-settle the cell with constant inputs; return output voltage."""
    circuit = cell.build(load_cap=TECH.min_inverter_input_cap())
    for pin, val in enumerate(values):
        circuit.set_source(input_node(pin), RampStimulus.steady(val, VDD))
    solver = TransientSolver(circuit)
    x = solver.settle(0.0)
    return x[solver.free.index(OUT_NODE)]


def logic_level(voltage):
    if voltage > 0.8 * VDD:
        return 1
    if voltage < 0.2 * VDD:
        return 0
    raise AssertionError(f"ambiguous logic level {voltage:.3f} V")


EXPECTED = {
    "inv": lambda vals: 1 - vals[0],
    "buf": lambda vals: vals[0],
    "nand": lambda vals: 1 - min(vals),
    "nor": lambda vals: 1 - max(vals),
    "and": lambda vals: min(vals),
    "or": lambda vals: max(vals),
    "xor": lambda vals: vals[0] ^ vals[1],
}


class TestCellValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GateCell("mux", 2, TECH)

    def test_inv_must_have_one_input(self):
        with pytest.raises(ValueError):
            GateCell("inv", 2, TECH)

    def test_xor_must_have_two_inputs(self):
        with pytest.raises(ValueError):
            GateCell("xor", 3, TECH)

    def test_fanin_bounds(self):
        with pytest.raises(ValueError):
            GateCell("nand", 1, TECH)
        with pytest.raises(ValueError):
            GateCell("nand", 9, TECH)

    def test_names(self):
        assert GateCell("inv", 1, TECH).name == "INV"
        assert GateCell("nand", 3, TECH).name == "NAND3"

    def test_controlling_values(self):
        assert GateCell("nand", 2, TECH).controlling_value == 0
        assert GateCell("and", 2, TECH).controlling_value == 0
        assert GateCell("nor", 2, TECH).controlling_value == 1
        assert GateCell("or", 2, TECH).controlling_value == 1
        assert GateCell("inv", 1, TECH).controlling_value is None
        assert GateCell("xor", 2, TECH).controlling_value is None

    def test_inverting_flags(self):
        assert GateCell("nand", 2, TECH).inverting is True
        assert GateCell("or", 2, TECH).inverting is False
        assert GateCell("xor", 2, TECH).inverting is None

    def test_input_capacitance_positive(self):
        cell = GateCell("nand", 3, TECH)
        assert cell.input_capacitance(0) > 0
        assert GateCell("xor", 2, TECH).input_capacitance(0) > cell.input_capacitance(0)


class TestTruthTables:
    @pytest.mark.parametrize("kind", ["inv", "buf"])
    def test_single_input_cells(self, kind):
        cell = GateCell(kind, 1, TECH)
        for val in (0, 1):
            assert logic_level(static_output(cell, [val])) == EXPECTED[kind]([val])

    @pytest.mark.parametrize("kind", ["nand", "nor", "and", "or", "xor"])
    def test_two_input_cells(self, kind):
        cell = GateCell(kind, 2, TECH)
        for vals in itertools.product((0, 1), repeat=2):
            got = logic_level(static_output(cell, list(vals)))
            assert got == EXPECTED[kind](list(vals)), f"{kind}{vals}"

    @pytest.mark.parametrize("kind", ["nand", "nor"])
    def test_three_input_cells(self, kind):
        cell = GateCell(kind, 3, TECH)
        for vals in itertools.product((0, 1), repeat=3):
            got = logic_level(static_output(cell, list(vals)))
            assert got == EXPECTED[kind](list(vals)), f"{kind}{vals}"


def falling(arrival, ttime=0.5e-9):
    return RampStimulus.transition(False, arrival, ttime, VDD)


def rising(arrival, ttime=0.5e-9):
    return RampStimulus.transition(True, arrival, ttime, VDD)


def steady(value):
    return RampStimulus.steady(value, VDD)


class TestSimultaneousSwitchingPhenomena:
    """The paper's Figure 1 / Figure 2 / Figure 3 phenomena."""

    def test_simultaneous_to_controlling_is_faster(self):
        nand = GateCell("nand", 2, TECH)
        single = simulate_gate(nand, [falling(2e-9), steady(1)])
        both = simulate_gate(nand, [falling(2e-9), falling(2e-9)])
        assert both.output_rising and single.output_rising
        assert both.delay_from_earliest() < 0.8 * single.delay_from_earliest()

    def test_nor_simultaneous_to_controlling_is_faster(self):
        nor = GateCell("nor", 2, TECH)
        single = simulate_gate(nor, [rising(2e-9), steady(0)])
        both = simulate_gate(nor, [rising(2e-9), rising(2e-9)])
        assert not both.output_rising and not single.output_rising
        assert both.delay_from_earliest() < 0.8 * single.delay_from_earliest()

    def test_large_skew_recovers_pin_to_pin(self):
        nand = GateCell("nand", 2, TECH)
        single = simulate_gate(nand, [falling(2e-9), steady(1)])
        skewed = simulate_gate(nand, [falling(2e-9), falling(2e-9 + 1.5e-9)])
        assert skewed.delay_from_earliest() == pytest.approx(
            single.delay_from_earliest(), rel=0.03
        )

    def test_minimum_delay_at_zero_skew(self):
        """Claim 1 of the paper (spot check)."""
        nand = GateCell("nand", 2, TECH)
        delays = {}
        for skew in (-0.2e-9, -0.1e-9, 0.0, 0.1e-9, 0.2e-9):
            r = simulate_gate(nand, [falling(2e-9), falling(2e-9 + skew)])
            delays[skew] = r.delay_from_earliest()
        assert min(delays, key=delays.get) == 0.0

    def test_input_position_increases_delay(self):
        """Figure 3: farther from the output means a slower pin-to-pin."""
        nand5 = GateCell("nand", 5, TECH)
        delays = []
        for pos in (0, 2, 4):
            stimuli = [steady(1)] * 5
            stimuli[pos] = falling(2e-9)
            r = simulate_gate(nand5, stimuli)
            delays.append(r.delay_from_pin(2e-9))
        assert delays[0] < delays[1] < delays[2]
        # The paper reports up to ~50% for its technology; ours must at
        # least show a clearly measurable effect.
        assert delays[2] > 1.15 * delays[0]

    def test_and_cell_inherits_speedup(self):
        and2 = GateCell("and", 2, TECH)
        single = simulate_gate(and2, [falling(2e-9), steady(1)])
        both = simulate_gate(and2, [falling(2e-9), falling(2e-9)])
        assert not single.output_rising
        assert both.delay_from_earliest() < single.delay_from_earliest()

    def test_output_transition_time_grows_with_input_transition_time(self):
        nand = GateCell("nand", 2, TECH)
        fast = simulate_gate(nand, [falling(2e-9, 0.2e-9), steady(1)])
        slow = simulate_gate(nand, [falling(2e-9, 1.2e-9), steady(1)])
        assert slow.trans_time > fast.trans_time

    def test_bitonic_direction_exists(self):
        """NOR2 fall delay decreases (even below zero) for very slow inputs."""
        nor = GateCell("nor", 2, TECH)
        mid = simulate_gate(nor, [rising(4e-9, 1.0e-9), steady(0)])
        slow = simulate_gate(nor, [rising(4e-9, 5.0e-9), steady(0)])
        assert slow.delay_from_earliest() < mid.delay_from_earliest()
        assert slow.delay_from_earliest() < 0.0


class TestSimulateGateInterface:
    def test_wrong_stimulus_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_gate(GateCell("nand", 2, TECH), [steady(1)])

    def test_no_transition_delay_raises(self):
        result = simulate_gate(
            GateCell("nand", 2, TECH), [falling(2e-9), steady(1)]
        )
        result.stimuli = [steady(1), steady(1)]
        with pytest.raises(ValueError):
            result.delay_from_earliest()
        with pytest.raises(ValueError):
            result.delay_from_latest()

    def test_delay_from_latest_for_noncontrolling(self):
        nand = GateCell("nand", 2, TECH)
        r = simulate_gate(nand, [rising(2e-9), rising(2.3e-9)])
        assert not r.output_rising
        assert r.delay_from_latest() == r.arrival - 2.3e-9

    def test_xor_both_directions(self):
        xor = GateCell("xor", 2, TECH)
        r1 = simulate_gate(xor, [rising(2e-9), steady(0)])
        assert r1.output_rising
        r2 = simulate_gate(xor, [rising(2e-9), steady(1)])
        assert not r2.output_rising
