"""Tests for incremental timing refinement (paper Section 5).

Key properties:

* with all lines at xx, ITR reproduces STA exactly (the paper: "STA is a
  special case of ITR where S_tr = 0 for every line");
* windows only shrink as values are specified (monotone refinement);
* refined windows stay sound: a timing simulation of any vector pair
  consistent with the assignment lands inside the refined windows;
* Table-1 behaviours: definite switchers cap/raise bounds, impossible
  transitions lose their windows.
"""

import random

import pytest

from repro.itr import ItrEngine, TwoFrame
from repro.models import VShapeModel
from repro.sta import PiStimulus, TimingAnalyzer, TimingSimulator

V = TwoFrame.parse
NS = 1e-9


@pytest.fixture()
def engine(c17, library):
    return ItrEngine(c17, library, VShapeModel())


class TestStaEquivalence:
    def test_unspecified_itr_equals_sta(self, engine, c17, library):
        sta = TimingAnalyzer(c17, library, VShapeModel()).analyze()
        itr = engine.refine(engine.initial_values())
        for line in c17.lines:
            for rising in (True, False):
                a = sta.line(line).window(rising)
                b = itr.line(line).window(rising)
                assert a.a_s == pytest.approx(b.a_s)
                assert a.a_l == pytest.approx(b.a_l)
                assert a.t_s == pytest.approx(b.t_s)
                assert a.t_l == pytest.approx(b.t_l)


class TestRefinementRules:
    def test_impossible_transition_loses_window(self, engine):
        values = engine.assign(engine.initial_values(), "G1", V("11"))
        result = engine.refine(values)
        assert not result.line("G1").rise.is_active
        assert not result.line("G1").fall.is_active

    def test_steady_zero_input_kills_controlled_speedup(self, engine, c17,
                                                        library):
        # G10 = NAND(G1, G3).  With G1 steady 1, only G3 can fall: the
        # earliest G10 rise loses the simultaneous-switching speed-up.
        base = engine.refine(engine.initial_values())
        values = engine.assign(engine.initial_values(), "G1", V("11"))
        refined = engine.refine(values)
        assert refined.line("G10").rise.a_s > base.line("G10").rise.a_s

    def test_definite_fall_caps_latest_rise(self, engine):
        # G1 definitely falls: G10's latest rise is capped by G1's path.
        base = engine.refine(engine.initial_values())
        values = engine.assign(engine.initial_values(), "G1", V("10"))
        refined = engine.refine(values)
        assert refined.line("G10").rise.a_l <= base.line("G10").rise.a_l

    def test_windows_only_shrink(self, engine, c17):
        """Monotone refinement along a random assignment sequence."""
        rng = random.Random(7)
        values = engine.initial_values()
        previous = engine.refine(values)
        # Assign PI values one at a time.
        for pi in c17.inputs:
            v1 = rng.choice("01")
            v2 = rng.choice("01")
            try:
                values = engine.assign(values, pi, V(v1 + v2))
            except Exception:
                continue
            current = engine.refine(values)
            for line in c17.lines:
                for rising in (True, False):
                    old = previous.line(line).window(rising)
                    new = current.line(line).window(rising)
                    assert old.contains_window(new, tol=1e-13), (
                        line, rising, old, new,
                    )
            previous = current

    def test_assignment_propagates_states(self, engine):
        values = engine.assign(engine.initial_values(), "G3", V("00"))
        result = engine.refine(values)
        # G3 = 0 controls both G10 and G11 high in both frames: no output
        # transitions there.
        assert not result.line("G10").rise.is_active
        assert not result.line("G10").fall.is_active
        assert not result.line("G11").fall.is_active

    def test_refine_assign_combo(self, engine):
        result = engine.refine(engine.initial_values())
        result2 = engine.refine_assign(result, "G1", V("10"))
        assert result2.values["G1"] == V("10")
        assert result2.line("G1").rise.is_active is False


class TestIncrementalRefinement:
    def test_matches_full_refine_along_sequence(self, engine, c17):
        rng = random.Random(31)
        values = engine.initial_values()
        incremental = engine.refine(values)
        for _ in range(8):
            pi = rng.choice(c17.inputs)
            literal = V(rng.choice(["01", "10", "11", "00", "1x", "x0"]))
            try:
                values = engine.assign(values, pi, literal)
            except Exception:
                continue
            full = engine.refine(values)
            incremental = engine.refine_incremental(incremental, values)
            for line in c17.lines:
                for rising in (True, False):
                    a = full.line(line).window(rising)
                    b = incremental.line(line).window(rising)
                    assert a.state == b.state, (line, rising)
                    if a.is_active:
                        assert (a.a_s, a.a_l, a.t_s, a.t_l) == (
                            b.a_s, b.a_l, b.t_s, b.t_l
                        ), (line, rising)

    def test_no_change_returns_same_windows(self, engine):
        base = engine.refine(engine.initial_values())
        again = engine.refine_incremental(base, base.values)
        for line, timing in base.sta.timings.items():
            assert again.sta.timings[line] is timing

    def test_refine_assign_uses_incremental_path(self, engine):
        base = engine.refine(engine.initial_values())
        updated = engine.refine_assign(base, "G1", V("10"))
        # Untouched cones keep their window objects.
        assert updated.sta.timings["G19"] is base.sta.timings["G19"]
        # The changed line is refreshed.
        assert not updated.line("G1").rise.is_active


class TestRefinedSoundness:
    def _stimuli_consistent(self, circuit, values, rng):
        """Random PI stimuli consistent with the (implied) assignment."""
        stimuli = {}
        for pi in circuit.inputs:
            v = values[pi]
            v1 = v.v1 if v.v1 is not None else rng.randint(0, 1)
            v2 = v.v2 if v.v2 is not None else rng.randint(0, 1)
            stimuli[pi] = PiStimulus(v1, v2)
        return stimuli

    def test_simulation_within_refined_windows(self, engine, c17, library):
        rng = random.Random(11)
        sim = TimingSimulator(c17, library, VShapeModel())
        values = engine.assign(engine.initial_values(), "G1", V("10"))
        values = engine.assign(values, "G2", V("11"))
        result = engine.refine(values)
        for _ in range(120):
            stimuli = self._stimuli_consistent(c17, values, rng)
            run = sim.run(stimuli)
            # Skip vector pairs inconsistent with implied internal values.
            consistent = all(
                values[line].intersect(
                    TwoFrame(run.values1[line], run.values2[line])
                ) is not None
                for line in c17.lines
            )
            if not consistent:
                continue
            for line in c17.lines:
                event = run.events[line]
                if event is None:
                    continue
                window = result.line(line).window(event.rising)
                assert window.is_active, (line, event)
                assert window.contains_event(event.arrival, event.trans), (
                    line, event, window,
                )

    def test_fully_specified_vector_gives_tight_windows(self, engine, c17,
                                                        library):
        """With every PI fixed, ITR windows collapse to near-points that
        still contain the simulated events."""
        values = engine.initial_values()
        spec = {"G1": "10", "G2": "11", "G3": "11", "G6": "11", "G7": "11"}
        for pi, lit in spec.items():
            values = engine.assign(values, pi, V(lit))
        result = engine.refine(values)
        sim = TimingSimulator(c17, library, VShapeModel())
        stimuli = {pi: PiStimulus(int(s[0]), int(s[1])) for pi, s in spec.items()}
        run = sim.run(stimuli)
        for line in c17.lines:
            event = run.events[line]
            if event is None:
                continue
            window = result.line(line).window(event.rising)
            assert window.contains_event(event.arrival, event.trans)
            # With one switching path, the window must be a point.
            assert window.arrival_width() <= 1e-13


class TestItrTightensVsSta:
    def test_refined_min_arrival_not_smaller(self, engine, c17, library):
        """ITR can only rule corners out, never add new earlier ones."""
        sta = TimingAnalyzer(c17, library, VShapeModel()).analyze()
        values = engine.assign(engine.initial_values(), "G3", V("11"))
        refined = engine.refine(values)
        for po in c17.outputs:
            for rising in (True, False):
                ref_w = refined.line(po).window(rising)
                sta_w = sta.line(po).window(rising)
                if ref_w.is_active:
                    assert ref_w.a_s >= sta_w.a_s - 1e-15

    def test_paper_workflow_narrowing(self, engine, c17):
        """More specified values => no wider output windows (the paper's
        motivation for using ITR inside ATPG)."""
        values = engine.initial_values()
        base = engine.refine(values)
        width0 = sum(
            base.line(po).window(r).arrival_width()
            for po in c17.outputs for r in (True, False)
            if base.line(po).window(r).is_active
        )
        values = engine.assign(values, "G1", V("10"))
        values = engine.assign(values, "G2", V("11"))
        values = engine.assign(values, "G7", V("11"))
        refined = engine.refine(values)
        width1 = sum(
            refined.line(po).window(r).arrival_width()
            for po in c17.outputs for r in (True, False)
            if refined.line(po).window(r).is_active
        )
        assert width1 <= width0 + 1e-15
