"""Hand-built synthetic CellTiming objects for fast, deterministic tests.

These bypass the characterization flow entirely: arcs are simple known
polynomials, so model arithmetic can be checked exactly.
"""

from repro.characterize.formulas import (
    CubeRootSurface,
    LinForm2,
    QuadForm2,
    QuadPoly1,
)
from repro.characterize.library import (
    CellTiming,
    SimultaneousTiming,
    TimingArc,
)

NS = 1e-9
REF_LOAD = 7e-15


def linear_poly(base, slope):
    """delay(T) = base + slope*T as a QuadPoly1."""
    return QuadPoly1(0.0, slope, base)


def make_arc(pin, in_rising, out_rising, base, slope=0.1,
             trans_base=0.15 * NS, trans_slope=0.5):
    return TimingArc(
        pin=pin,
        in_rising=in_rising,
        out_rising=out_rising,
        delay=linear_poly(base, slope),
        trans=linear_poly(trans_base, trans_slope),
        t_lo=0.05 * NS,
        t_hi=2.0 * NS,
    )


def make_nand(n_inputs=2, d0=0.06 * NS, s_sat=0.3 * NS,
              pin_delay_step=0.02 * NS):
    """A synthetic NANDn with per-position pin delays.

    Pin p's to-controlling delay is ``0.10ns + p*step + 0.1*T``; the
    zero-skew simultaneous delay is the constant ``d0`` and both
    saturation skews are the constant ``s_sat``.
    """
    arcs = {}
    for pin in range(n_inputs):
        base = 0.10 * NS + pin * pin_delay_step
        ctrl = make_arc(pin, False, True, base)          # fall in -> rise out
        nonctrl = make_arc(pin, True, False, base * 0.8)  # rise in -> fall out
        arcs[ctrl.key] = ctrl
        arcs[nonctrl.key] = nonctrl
    pair_scale = {}
    for p in range(n_inputs):
        for q in range(p + 1, n_inputs):
            pair_scale[f"{p}-{q}"] = 1.0 + 0.05 * (p + q - 1)
    ctrl = SimultaneousTiming(
        out_rising=True,
        d0=CubeRootSurface(0.0, 0.0, 0.0, d0),
        s_pos=QuadForm2(0, 0, 0, 0, 0, s_sat),
        s_neg=QuadForm2(0, 0, 0, 0, 0, s_sat * 1.2),
        t_vertex=CubeRootSurface(0.0, 0.0, 0.0, 0.10 * NS),
        t_vertex_skew=LinForm2(0.0, 0.0, 0.0),
        pair_scale=pair_scale,
        multi_scale={"2": 1.0, "3": 0.8, "4": 0.7, "5": 0.65}
        if n_inputs >= 3 else {"2": 1.0},
        trans_multi_scale={"2": 1.0, "3": 0.9, "4": 0.85, "5": 0.8}
        if n_inputs >= 3 else {"2": 1.0},
    )
    return CellTiming(
        name=f"NAND{n_inputs}",
        kind="nand",
        n_inputs=n_inputs,
        controlling_value=0,
        inverting=True,
        input_caps=[3e-15] * n_inputs,
        ref_load=REF_LOAD,
        arcs=arcs,
        ctrl=ctrl,
        load_delay_slope={"R": 4e3, "F": 4e3},
        load_trans_slope={"R": 8e3, "F": 8e3},
    )


def make_inv():
    arcs = {}
    rise_in = make_arc(0, True, False, 0.05 * NS)
    fall_in = make_arc(0, False, True, 0.06 * NS)
    arcs[rise_in.key] = rise_in
    arcs[fall_in.key] = fall_in
    return CellTiming(
        name="INV",
        kind="inv",
        n_inputs=1,
        controlling_value=None,
        inverting=True,
        input_caps=[3e-15],
        ref_load=REF_LOAD,
        arcs=arcs,
        ctrl=None,
        load_delay_slope={"R": 4e3, "F": 4e3},
        load_trans_slope={"R": 8e3, "F": 8e3},
    )


def make_xor():
    arcs = {}
    for pin in range(2):
        for in_rising in (True, False):
            for out_rising in (True, False):
                arc = make_arc(pin, in_rising, out_rising, 0.12 * NS)
                arcs[arc.key] = arc
    return CellTiming(
        name="XOR2",
        kind="xor",
        n_inputs=2,
        controlling_value=None,
        inverting=None,
        input_caps=[6e-15, 6e-15],
        ref_load=REF_LOAD,
        arcs=arcs,
        ctrl=None,
        load_delay_slope={"R": 4e3, "F": 4e3},
        load_trans_slope={"R": 8e3, "F": 8e3},
    )


def make_nor(n_inputs=2, d0=0.05 * NS, s_sat=0.25 * NS):
    """Synthetic NORn: rising inputs are to-controlling, output falls."""
    arcs = {}
    for pin in range(n_inputs):
        base = 0.09 * NS + pin * 0.015 * NS
        ctrl = make_arc(pin, True, False, base)           # rise in -> fall out
        nonctrl = make_arc(pin, False, True, base * 0.9)  # fall in -> rise out
        arcs[ctrl.key] = ctrl
        arcs[nonctrl.key] = nonctrl
    pair_scale = {
        f"{p}-{q}": 1.0
        for p in range(n_inputs) for q in range(p + 1, n_inputs)
    }
    ctrl = SimultaneousTiming(
        out_rising=False,
        d0=CubeRootSurface(0.0, 0.0, 0.0, d0),
        s_pos=QuadForm2(0, 0, 0, 0, 0, s_sat),
        s_neg=QuadForm2(0, 0, 0, 0, 0, s_sat),
        t_vertex=CubeRootSurface(0.0, 0.0, 0.0, 0.09 * NS),
        t_vertex_skew=LinForm2(0.0, 0.0, 0.0),
        pair_scale=pair_scale,
        multi_scale={"2": 1.0},
        trans_multi_scale={"2": 1.0},
    )
    return CellTiming(
        name=f"NOR{n_inputs}",
        kind="nor",
        n_inputs=n_inputs,
        controlling_value=1,
        inverting=True,
        input_caps=[3e-15] * n_inputs,
        ref_load=REF_LOAD,
        arcs=arcs,
        ctrl=ctrl,
        load_delay_slope={"R": 4e3, "F": 4e3},
        load_trans_slope={"R": 8e3, "F": 8e3},
    )
