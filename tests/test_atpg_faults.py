"""Tests for the crosstalk fault model and fault injection."""

import pytest

from repro.atpg import CrosstalkFault, FaultySimulator, generate_fault_list
from repro.models import OutputEvent, VShapeModel
from repro.sta import PiStimulus, TimingSimulator

NS = 1e-9


def fault(**overrides):
    base = dict(
        aggressor="G10",
        victim="G16",
        aggressor_rising=True,
        victim_rising=False,
        delta=0.2 * NS,
        window=0.3 * NS,
    )
    base.update(overrides)
    return CrosstalkFault(**base)


class TestCrosstalkFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            fault(victim="G10")
        with pytest.raises(ValueError):
            fault(delta=0.0)
        with pytest.raises(ValueError):
            fault(window=-1.0)

    def test_describe_mentions_lines(self):
        text = fault().describe()
        assert "G10" in text and "G16" in text

    def test_excited_by_alignment(self):
        f = fault()
        agg = OutputEvent(1 * NS, 0.1 * NS, True)
        vic_near = OutputEvent(1.2 * NS, 0.1 * NS, False)
        vic_far = OutputEvent(2 * NS, 0.1 * NS, False)
        assert f.excited_by(agg, vic_near)
        assert not f.excited_by(agg, vic_far)

    def test_excited_by_requires_directions(self):
        f = fault()
        agg_wrong = OutputEvent(1 * NS, 0.1 * NS, False)
        vic = OutputEvent(1.1 * NS, 0.1 * NS, False)
        assert not f.excited_by(agg_wrong, vic)
        assert not f.excited_by(None, vic)
        assert not f.excited_by(OutputEvent(1 * NS, 0.1 * NS, True), None)


class TestFaultListGeneration:
    def test_deterministic(self, c880s):
        a = generate_fault_list(c880s, 20, seed=3)
        b = generate_fault_list(c880s, 20, seed=3)
        assert a == b

    def test_distinct_seeds_differ(self, c880s):
        a = generate_fault_list(c880s, 20, seed=3)
        b = generate_fault_list(c880s, 20, seed=4)
        assert a != b

    def test_level_gap_respected(self, c880s):
        levels = c880s.levelize()
        for f in generate_fault_list(c880s, 30, seed=1, max_level_gap=2):
            assert abs(levels[f.aggressor] - levels[f.victim]) <= 2

    def test_aggressor_precedes_victim_topologically(self, c880s):
        order = {l: i for i, l in enumerate(c880s.topological_order())}
        for f in generate_fault_list(c880s, 30, seed=1):
            assert order[f.aggressor] < order[f.victim]

    def test_too_small_circuit_rejected(self):
        from repro.circuit import Circuit, Gate

        tiny = Circuit("t", ["a", "b"], ["z"], [Gate("z", "and", ["a", "b"])])
        with pytest.raises(ValueError):
            generate_fault_list(tiny, 5)


class TestFaultySimulator:
    def _sims(self, c17, library, f):
        clean = TimingSimulator(c17, library, VShapeModel())
        faulty = FaultySimulator(c17, library, VShapeModel(), fault=f)
        return clean, faulty

    def test_injection_when_aligned(self, c17, library):
        # G1 falls -> G10 rises; G3 falls -> G11 rises -> aligned-ish
        # transitions; make G10 the aggressor and G16 the victim.
        stimuli = {pi: PiStimulus.steady(1) for pi in c17.inputs}
        stimuli["G1"] = PiStimulus.transition(False)
        stimuli["G2"] = PiStimulus.steady(1)
        stimuli["G3"] = PiStimulus.transition(False)
        # G11 rises => G16 falls (victim falling).
        f = CrosstalkFault(
            aggressor="G10", victim="G16",
            aggressor_rising=True, victim_rising=False,
            delta=0.2 * NS, window=1.0 * NS,
        )
        clean, faulty = self._sims(c17, library, f)
        r_clean = clean.run(stimuli)
        r_faulty = faulty.run(stimuli)
        assert r_clean.events["G16"] is not None
        assert r_faulty.arrival("G16") == pytest.approx(
            r_clean.arrival("G16") + f.delta
        )
        # The extra delay propagates downstream (G23 = NAND(G16, G19)).
        assert r_faulty.arrival("G23") > r_clean.arrival("G23")

    def test_no_injection_when_direction_mismatch(self, c17, library):
        stimuli = {pi: PiStimulus.steady(1) for pi in c17.inputs}
        stimuli["G1"] = PiStimulus.transition(False)
        stimuli["G3"] = PiStimulus.transition(False)
        f = CrosstalkFault(
            aggressor="G10", victim="G16",
            aggressor_rising=False,  # actual transition is rising
            victim_rising=False,
            delta=0.2 * NS, window=1.0 * NS,
        )
        clean, faulty = self._sims(c17, library, f)
        assert faulty.run(stimuli).arrival("G16") == pytest.approx(
            clean.run(stimuli).arrival("G16")
        )

    def test_no_injection_when_window_missed(self, c17, library):
        stimuli = {pi: PiStimulus.steady(1) for pi in c17.inputs}
        stimuli["G1"] = PiStimulus.transition(False, arrival=0.0)
        stimuli["G3"] = PiStimulus.transition(False, arrival=3 * NS)
        f = CrosstalkFault(
            aggressor="G10", victim="G16",
            aggressor_rising=True, victim_rising=False,
            delta=0.2 * NS, window=0.1 * NS,
        )
        clean, faulty = self._sims(c17, library, f)
        assert faulty.run(stimuli).arrival("G16") == pytest.approx(
            clean.run(stimuli).arrival("G16")
        )
