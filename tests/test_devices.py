"""Unit tests for the MOSFET device model (currents, regions, derivatives)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.devices import Capacitor, Mosfet
from repro.tech import GENERIC_05UM as TECH

VDD = TECH.vdd


def nmos():
    return Mosfet("mn", "n", "d", "g", "s", TECH.w_n_min, TECH.l_min)


def pmos():
    return Mosfet("mp", "p", "d", "g", "s", TECH.w_p_min, TECH.l_min)


class TestConstruction:
    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError):
            Mosfet("m", "x", "d", "g", "s", 1e-6, 1e-6)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Mosfet("m", "n", "d", "g", "s", 0.0, 1e-6)
        with pytest.raises(ValueError):
            Mosfet("m", "n", "d", "g", "s", 1e-6, -1e-6)

    def test_capacitor_rejects_negative(self):
        with pytest.raises(ValueError):
            Capacitor("c", "n1", -1e-15)


class TestNmosRegions:
    def test_cutoff_zero_current(self):
        i, *_ = nmos().evaluate(VDD, 0.0, 0.0, TECH)
        assert i == 0.0

    def test_saturation_positive_current(self):
        i, *_ = nmos().evaluate(VDD, VDD, 0.0, TECH)
        # Saturated minimum NMOS should carry on the order of a milliamp.
        assert 1e-4 < i < 1e-2

    def test_triode_less_than_saturation(self):
        i_sat, *_ = nmos().evaluate(VDD, VDD, 0.0, TECH)
        i_tri, *_ = nmos().evaluate(0.2, VDD, 0.0, TECH)
        assert 0 < i_tri < i_sat

    def test_region_boundary_is_continuous(self):
        vov = VDD - TECH.vtn
        below, *_ = nmos().evaluate(vov - 1e-9, VDD, 0.0, TECH)
        above, *_ = nmos().evaluate(vov + 1e-9, VDD, 0.0, TECH)
        assert below == pytest.approx(above, rel=1e-5)

    def test_symmetry_swap(self):
        """Swapping drain and source negates the current."""
        fwd, *_ = nmos().evaluate(2.0, VDD, 0.5, TECH)
        rev, *_ = nmos().evaluate(0.5, VDD, 2.0, TECH)
        assert fwd == pytest.approx(-rev, rel=1e-12)

    def test_current_increases_with_vgs(self):
        i1, *_ = nmos().evaluate(VDD, 1.5, 0.0, TECH)
        i2, *_ = nmos().evaluate(VDD, 2.5, 0.0, TECH)
        assert i2 > i1


class TestPmosRegions:
    def test_cutoff(self):
        i, *_ = pmos().evaluate(0.0, VDD, VDD, TECH)
        assert i == 0.0

    def test_conducting_pulls_up(self):
        """PMOS with gate low delivers current INTO its drain node."""
        i, *_ = pmos().evaluate(0.0, 0.0, VDD, TECH)
        # Current leaving the drain is negative == current delivered to node.
        assert i < -1e-5

    def test_symmetry_swap(self):
        fwd, *_ = pmos().evaluate(1.0, 0.0, VDD, TECH)
        rev, *_ = pmos().evaluate(VDD, 0.0, 1.0, TECH)
        assert fwd == pytest.approx(-rev, rel=1e-12)


def finite_difference_check(device, vd, vg, vs):
    """Compare analytic partials with central differences."""
    eps = 1e-6
    i0, d_vd, d_vg, d_vs = device.evaluate(vd, vg, vs, TECH)
    for idx, (analytic, args) in enumerate(
        [
            (d_vd, (vd + eps, vg, vs)),
            (d_vg, (vd, vg + eps, vs)),
            (d_vs, (vd, vg, vs + eps)),
        ]
    ):
        plus, *_ = device.evaluate(*args, TECH)
        args_minus = list((vd, vg, vs))
        args_minus[idx] -= eps
        minus, *_ = device.evaluate(*args_minus, TECH)
        numeric = (plus - minus) / (2 * eps)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-9)


class TestDerivatives:
    @pytest.mark.parametrize(
        "vd,vg,vs",
        [
            (3.0, 3.3, 0.0),   # saturation
            (0.3, 3.3, 0.0),   # triode
            (1.2, 2.0, 0.4),   # stacked-transistor bias
            (0.2, 3.3, 1.5),   # swapped orientation
        ],
    )
    def test_nmos_partials_match_finite_difference(self, vd, vg, vs):
        finite_difference_check(nmos(), vd, vg, vs)

    @pytest.mark.parametrize(
        "vd,vg,vs",
        [
            (0.5, 0.0, 3.3),   # saturation
            (3.0, 0.0, 3.3),   # triode
            (2.1, 1.2, 2.9),   # stacked bias
            (3.1, 0.0, 1.0),   # swapped orientation
        ],
    )
    def test_pmos_partials_match_finite_difference(self, vd, vg, vs):
        finite_difference_check(pmos(), vd, vg, vs)

    @given(
        vd=st.floats(min_value=0.0, max_value=VDD),
        vg=st.floats(min_value=0.0, max_value=VDD),
        vs=st.floats(min_value=0.0, max_value=VDD),
    )
    @settings(max_examples=60, deadline=None)
    def test_nmos_current_sign_follows_drain_source_order(self, vd, vg, vs):
        i, *_ = nmos().evaluate(vd, vg, vs, TECH)
        if vd > vs:
            assert i >= 0.0
        elif vd < vs:
            assert i <= 0.0

    @given(
        vg=st.floats(min_value=0.0, max_value=VDD),
        vd=st.floats(min_value=0.0, max_value=VDD),
    )
    @settings(max_examples=60, deadline=None)
    def test_nmos_monotone_in_gate_voltage(self, vg, vd):
        i1, *_ = nmos().evaluate(vd, vg, 0.0, TECH)
        i2, *_ = nmos().evaluate(vd, min(vg + 0.3, VDD + 0.3), 0.0, TECH)
        assert i2 >= i1 - 1e-15


class TestCapacitances:
    def test_gate_cap_scales_with_width(self):
        small = nmos().gate_capacitance(TECH)
        wide = Mosfet("m", "n", "d", "g", "s", 2 * TECH.w_n_min, TECH.l_min)
        assert wide.gate_capacitance(TECH) == pytest.approx(2 * small)

    def test_junction_cap_positive(self):
        assert nmos().junction_capacitance(TECH) > 0
