"""Unit tests of the gate-propagation memo (:mod:`repro.sta.cache`)."""

import pytest

from repro.obs.registry import disable, enable
from repro.sta.cache import PropagationCache
from repro.sta.windows import DirWindow, LineTiming

NS = 1e-9


def _timing(a_s=0.1, a_l=None, t_s=0.05, t_l=0.08):
    if a_l is None:
        a_l = a_s + 0.1
    return LineTiming(
        rise=DirWindow(a_s * NS, a_l * NS, t_s * NS, t_l * NS),
        fall=DirWindow(a_s * NS, a_l * NS, t_s * NS, t_l * NS),
    )


def _cache(max_entries=8, quantum=1e-15):
    return PropagationCache(max_entries=max_entries, quantum=quantum)


def test_round_trip_returns_equal_but_distinct_objects():
    cache = _cache()
    inputs = [_timing(), _timing(0.3, 0.4)]
    key, tag = cache.key_for("nand2", 1e-14, inputs)
    assert cache.lookup(key, tag) is None
    stored = _timing(0.5, 0.9)
    cache.store(key, tag, stored)
    hit = cache.lookup(key, tag)
    assert hit is not None
    assert hit is not stored
    assert hit.rise == stored.rise and hit.fall == stored.fall
    # Mutating the returned copy must not poison the cache.
    hit.rise.a_s = 123.0
    again = cache.lookup(key, tag)
    assert again.rise.a_s == stored.rise.a_s


def test_eviction_bound_holds():
    cache = _cache(max_entries=4)
    for i in range(10):
        key, tag = cache.key_for("inv1", 1e-14, [_timing(0.1 * (i + 1))])
        cache.store(key, tag, _timing())
    assert len(cache) == 4
    # The most recent entries survive (LRU eviction).
    key, tag = cache.key_for("inv1", 1e-14, [_timing(0.1 * 10)])
    assert cache.lookup(key, tag) is not None
    key, tag = cache.key_for("inv1", 1e-14, [_timing(0.1 * 1)])
    assert cache.lookup(key, tag) is None


def test_hit_miss_counters_published():
    registry = enable()
    try:
        before_hits = registry.counter("sta.memo.hits").value
        before_misses = registry.counter("sta.memo.misses").value
        cache = _cache()
        key, tag = cache.key_for("nor2", 2e-14, [_timing()])
        cache.lookup(key, tag)  # miss
        cache.store(key, tag, _timing())
        cache.lookup(key, tag)  # hit
        assert registry.counter("sta.memo.hits").value == before_hits + 1
        assert registry.counter("sta.memo.misses").value == before_misses + 1
    finally:
        disable()


def test_quantization_collision_is_a_miss_not_a_wrong_hit():
    # A huge quantum forces distinct windows onto the same hash key; the
    # exact tag check must turn the collision into a miss.
    cache = _cache(quantum=1.0)
    a = [_timing(0.10)]
    b = [_timing(0.11)]
    key_a, tag_a = cache.key_for("nand2", 1e-14, a)
    key_b, tag_b = cache.key_for("nand2", 1e-14, b)
    assert key_a == key_b and tag_a != tag_b
    cache.store(key_a, tag_a, _timing(1.0))
    assert cache.lookup(key_b, tag_b) is None


def test_impossible_windows_key_on_state():
    cache = _cache()
    dead = LineTiming(
        rise=DirWindow.impossible(), fall=DirWindow.impossible()
    )
    key, tag = cache.key_for("nand2", 1e-14, [dead])
    cache.store(key, tag, _timing())
    # NaN fields would defeat tag equality; the state-only key must hit.
    key2, tag2 = cache.key_for(
        "nand2",
        1e-14,
        [LineTiming(rise=DirWindow.impossible(), fall=DirWindow.impossible())],
    )
    assert key2 == key and tag2 == tag
    assert cache.lookup(key2, tag2) is not None


def test_analyzer_counters_track_real_work():
    # Work counters must mean what they say: ``sta.gates_evaluated`` is
    # the number of corner searches actually run, so memo hits leave it
    # (and ``sta.corner_calls``) untouched.
    from repro.characterize.library import CellLibrary
    from repro.circuit import load_packaged_bench
    from repro.sta.analysis import TimingAnalyzer

    registry = enable()
    try:
        circuit = load_packaged_bench("c432s")
        analyzer = TimingAnalyzer(circuit, CellLibrary.load_default())
        analyzer.analyze()
        hits = registry.counter("sta.memo.hits").value
        misses = registry.counter("sta.memo.misses").value
        evaluated = registry.counter("sta.gates_evaluated").value
        assert hits + misses == len(circuit.gates)
        assert evaluated == misses
        assert registry.counter("sta.corner_calls").value == 2 * evaluated
        # Same inputs again: every gate hits the memo, no new work.
        analyzer.analyze()
        assert registry.counter("sta.memo.hits").value == hits + len(
            circuit.gates
        )
        assert registry.counter("sta.memo.misses").value == misses
        assert registry.counter("sta.gates_evaluated").value == evaluated
        assert registry.counter("sta.corner_calls").value == 2 * evaluated
    finally:
        disable()


def test_constructor_validation():
    with pytest.raises(ValueError):
        PropagationCache(max_entries=0, quantum=1e-15)
    with pytest.raises(ValueError):
        PropagationCache(max_entries=4, quantum=0.0)


def test_clear_resets_entries():
    cache = _cache()
    key, tag = cache.key_for("inv1", 1e-14, [_timing()])
    cache.store(key, tag, _timing())
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.lookup(key, tag) is None
