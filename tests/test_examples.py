"""Smoke tests: every shipped example must run and produce its report."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, args=(), timeout=600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "V-shape anchors" in proc.stdout
        assert "pin-to-pin" in proc.stdout

    def test_itr_refinement(self):
        proc = run_example("itr_refinement.py")
        assert proc.returncode == 0, proc.stderr
        assert "plain STA" in proc.stdout
        assert "Windows only ever narrow" in proc.stdout

    def test_sta_min_delay_single_circuit(self):
        proc = run_example("sta_min_delay.py", ["c17"])
        assert proc.returncode == 0, proc.stderr
        assert "c17" in proc.stdout
        assert "ratio" in proc.stdout

    @pytest.mark.slow
    def test_atpg_crosstalk_small(self):
        proc = run_example("atpg_crosstalk.py", ["c17", "4"])
        assert proc.returncode == 0, proc.stderr
        assert "with ITR" in proc.stdout
        assert "efficiency" in proc.stdout

    @pytest.mark.slow
    def test_model_accuracy(self):
        proc = run_example("model_accuracy.py")
        assert proc.returncode == 0, proc.stderr
        assert "figure-10" in proc.stdout
        assert "figure-12" in proc.stdout
