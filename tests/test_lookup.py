"""Unit tests for the table-lookup baseline model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    InputEvent,
    LookupModel,
    LookupTable,
    ModelCoverageError,
)
from tests.synthetic import REF_LOAD, make_nand

NS = 1e-9


def make_table():
    """A hand-built table: delay = 0.1ns + |skew| * 0.1, trans = 0.2ns."""
    t_grid = np.array([0.2 * NS, 0.6 * NS, 1.0 * NS])
    skew_grid = np.array([-0.4 * NS, 0.0, 0.4 * NS])
    shape = (3, 3, 3)
    delay = np.zeros(shape)
    trans = np.full(shape, 0.2 * NS)
    for k, skew in enumerate(skew_grid):
        delay[:, :, k] = 0.1 * NS + abs(skew) * 0.1
    return LookupTable(
        pins=(0, 1),
        t_p_grid=t_grid,
        t_q_grid=t_grid,
        skew_grid=skew_grid,
        delay=delay,
        trans=trans,
    )


class TestLookupTable:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LookupTable(
                pins=(0, 1),
                t_p_grid=np.array([1.0, 2.0]),
                t_q_grid=np.array([1.0, 2.0]),
                skew_grid=np.array([0.0]),
                delay=np.zeros((2, 2, 2)),  # wrong skew axis
                trans=np.zeros((2, 2, 1)),
            )

    def test_exact_grid_points(self):
        table = make_table()
        d, t = table.interpolate(0.2 * NS, 0.2 * NS, 0.0)
        assert d == pytest.approx(0.1 * NS)
        assert t == pytest.approx(0.2 * NS)

    def test_interpolation_between_points(self):
        table = make_table()
        d, _ = table.interpolate(0.4 * NS, 0.6 * NS, 0.2 * NS)
        assert d == pytest.approx(0.1 * NS + 0.02 * NS)

    def test_clamping_at_edges(self):
        table = make_table()
        inside, _ = table.interpolate(0.2 * NS, 0.2 * NS, -0.4 * NS)
        outside, _ = table.interpolate(0.05 * NS, 0.2 * NS, -5 * NS)
        assert outside == pytest.approx(inside)

    @given(
        t_p=st.floats(min_value=0.1e-9, max_value=1.2e-9),
        t_q=st.floats(min_value=0.1e-9, max_value=1.2e-9),
        skew=st.floats(min_value=-0.6e-9, max_value=0.6e-9),
    )
    @settings(max_examples=80, deadline=None)
    def test_interpolation_bounded_by_table(self, t_p, t_q, skew):
        table = make_table()
        d, t = table.interpolate(t_p, t_q, skew)
        assert table.delay.min() - 1e-18 <= d <= table.delay.max() + 1e-18
        assert table.trans.min() - 1e-18 <= t <= table.trans.max() + 1e-18


class TestLookupModel:
    def events(self, skew=0.0):
        return [
            InputEvent(0, 1 * NS, 0.4 * NS, False),
            InputEvent(1, 1 * NS + skew, 0.4 * NS, False),
        ]

    def test_pair_query(self):
        model = LookupModel(make_table())
        cell = make_nand(2)
        delay, trans = model.controlling_response(
            cell, self.events(), REF_LOAD
        )
        assert delay == pytest.approx(0.1 * NS)
        assert trans == pytest.approx(0.2 * NS)

    def test_skew_sign_convention(self):
        model = LookupModel(make_table())
        cell = make_nand(2)
        d_pos, _ = model.controlling_response(
            cell, self.events(skew=0.4 * NS), REF_LOAD
        )
        assert d_pos == pytest.approx(0.1 * NS + 0.04 * NS)

    def test_single_event_uses_arcs(self):
        model = LookupModel(make_table())
        cell = make_nand(2)
        delay, _ = model.controlling_response(
            cell, [InputEvent(0, 1 * NS, 0.5 * NS, False)], REF_LOAD
        )
        assert delay == pytest.approx(0.15 * NS)  # synthetic arc value

    def test_three_events_uncovered(self):
        model = LookupModel(make_table())
        cell = make_nand(3)
        events = [
            InputEvent(p, 1 * NS, 0.4 * NS, False) for p in range(3)
        ]
        with pytest.raises(ModelCoverageError):
            model.controlling_response(cell, events, REF_LOAD)

    def test_wrong_pins_uncovered(self):
        model = LookupModel(make_table())
        cell = make_nand(3)
        events = [
            InputEvent(1, 1 * NS, 0.4 * NS, False),
            InputEvent(2, 1 * NS, 0.4 * NS, False),
        ]
        with pytest.raises(ModelCoverageError):
            model.controlling_response(cell, events, REF_LOAD)

    def test_load_adjustment_applied(self):
        model = LookupModel(make_table())
        cell = make_nand(2)
        light, _ = model.controlling_response(cell, self.events(), REF_LOAD)
        heavy, _ = model.controlling_response(
            cell, self.events(), REF_LOAD + 10e-15
        )
        assert heavy > light
