"""Property tests of the circuit mutation API.

Random edit sequences (resize / swap / rewire) must keep every derived
view — topological order, levels, fan-outs — consistent with a circuit
rebuilt from scratch off the mutated structure, and the ``.bench``
serialization must round-trip edited circuits including their sizes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Circuit,
    GeneratorConfig,
    generate_circuit,
    parse_bench,
    write_bench,
)
from repro.fuzz.generate import random_edit_sequence


def _mutated_circuit(circuit_seed: int, edit_seed: int) -> Circuit:
    config = GeneratorConfig(
        n_inputs=4, n_outputs=2, n_gates=14, seed=circuit_seed
    )
    circuit = generate_circuit(f"hyp{circuit_seed}", config)
    rng = random.Random(edit_seed)
    edits = random_edit_sequence(rng, circuit.to_dict(), max_edits=8)
    for op, line, value, pin in edits:
        if op == "resize":
            circuit.resize_gate(line, value)
        elif op == "swap":
            circuit.swap_cell(line, value)
        else:
            circuit.rewire_input(line, pin, value)
    return circuit


def _structure(circuit: Circuit) -> dict:
    return {
        out: (gate.kind, tuple(gate.inputs), gate.size)
        for out, gate in circuit.gates.items()
    }


@given(
    circuit_seed=st.integers(0, 10**6),
    edit_seed=st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None)
def test_edited_views_match_rebuilt_circuit(circuit_seed, edit_seed):
    circuit = _mutated_circuit(circuit_seed, edit_seed)
    rebuilt = Circuit.from_dict(circuit.to_dict())
    assert circuit.topological_order() == rebuilt.topological_order()
    assert circuit.levelize() == rebuilt.levelize()
    for line in circuit.lines:
        assert (
            [g.output for g in circuit.fanouts(line)]
            == [g.output for g in rebuilt.fanouts(line)]
        ), line


@given(
    circuit_seed=st.integers(0, 10**6),
    edit_seed=st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None)
def test_bench_round_trips_edited_circuits(circuit_seed, edit_seed):
    circuit = _mutated_circuit(circuit_seed, edit_seed)
    round_tripped = parse_bench(write_bench(circuit), name=circuit.name)
    assert round_tripped.inputs == circuit.inputs
    assert round_tripped.outputs == circuit.outputs
    assert _structure(round_tripped) == _structure(circuit)
    # Sizes survive exactly (repr round-trip in the size directive).
    for out, gate in circuit.gates.items():
        assert round_tripped.gates[out].size == gate.size


@given(
    circuit_seed=st.integers(0, 10**6),
    edit_seed=st.integers(0, 10**6),
)
@settings(max_examples=15, deadline=None)
def test_edit_log_replays_to_same_structure(circuit_seed, edit_seed):
    config = GeneratorConfig(
        n_inputs=4, n_outputs=2, n_gates=14, seed=circuit_seed
    )
    circuit = generate_circuit(f"hyp{circuit_seed}", config)
    pristine = Circuit.from_dict(circuit.to_dict())
    rng = random.Random(edit_seed)
    for op, line, value, pin in random_edit_sequence(
        rng, circuit.to_dict(), max_edits=6
    ):
        if op == "resize":
            circuit.resize_gate(line, value)
        elif op == "swap":
            circuit.swap_cell(line, value)
        else:
            circuit.rewire_input(line, pin, value)
    # Replaying the recorded log against the pristine copy reproduces
    # the mutated structure (what the incremental analyzer relies on).
    for edit in circuit.edit_log:
        if edit.op == "resize":
            pristine.resize_gate(edit.line, edit.new)
        elif edit.op == "swap":
            pristine.swap_cell(edit.line, edit.new)
        else:
            pristine.rewire_input(edit.line, edit.pin, edit.new)
    assert _structure(pristine) == _structure(circuit)
    assert pristine.edit_epoch == circuit.edit_epoch
