"""Tests for worst-case corner identification (synthetic cells => exact)."""

import pytest

from repro.models import VShapeModel, PinToPinModel
from repro.sta.corners import (
    CtrlInput,
    arc_fanin_window,
    ctrl_response_window,
    nonctrl_response_window,
    pin_delay_bounds,
    pin_trans_bounds,
)
from repro.sta.windows import DEFINITE, DirWindow, POTENTIAL
from repro.characterize.formulas import QuadPoly1
from tests.synthetic import REF_LOAD, make_inv, make_nand

NS = 1e-9


def win(a_s, a_l, t_s=0.5 * NS, t_l=0.5 * NS, state=POTENTIAL):
    return DirWindow(a_s, a_l, t_s, t_l, state)


class TestPinBounds:
    def test_linear_arc_bounds_at_endpoints(self):
        cell = make_nand(2)
        d_min, d_max = pin_delay_bounds(
            cell, 0, False, True, 0.2 * NS, 0.8 * NS, REF_LOAD
        )
        assert d_min == pytest.approx(0.10 * NS + 0.1 * 0.2 * NS)
        assert d_max == pytest.approx(0.10 * NS + 0.1 * 0.8 * NS)

    def test_bitonic_arc_peak_inside_window(self):
        cell = make_nand(2)
        # Replace pin 0's ctrl delay with a bi-tonic quadratic peaking at
        # T = 1 ns: d(T) = -(a)(T - 1ns)^2 + 0.3ns.
        a = 0.1 / NS
        arc = cell.arc(0, False, True)
        arc.delay = QuadPoly1(-a, 2 * a * NS, 0.3 * NS - a * NS * NS)
        d_min, d_max = pin_delay_bounds(
            cell, 0, False, True, 0.5 * NS, 1.5 * NS, REF_LOAD
        )
        assert d_max == pytest.approx(0.3 * NS)  # the interior peak
        assert d_min == pytest.approx(arc.delay(0.5 * NS))

    def test_clamping_to_characterized_range(self):
        cell = make_nand(2)
        tiny = pin_delay_bounds(cell, 0, False, True, 1e-12, 1e-12, REF_LOAD)
        at_lo = pin_delay_bounds(
            cell, 0, False, True, 0.05 * NS, 0.05 * NS, REF_LOAD
        )
        assert tiny == at_lo

    def test_trans_bounds(self):
        cell = make_nand(2)
        t_min, t_max = pin_trans_bounds(
            cell, 0, False, True, 0.2 * NS, 0.8 * NS, REF_LOAD
        )
        assert t_min == pytest.approx(0.15 * NS + 0.5 * 0.2 * NS)
        assert t_max == pytest.approx(0.15 * NS + 0.5 * 0.8 * NS)


class TestCtrlResponseWindow:
    def test_no_active_inputs_is_impossible(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, DirWindow.impossible()),
                  CtrlInput(1, DirWindow.impossible())]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        assert not out.is_active

    def test_single_active_input_matches_pin_bounds(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, win(1 * NS, 2 * NS)),
                  CtrlInput(1, DirWindow.impossible())]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        assert out.a_s == pytest.approx(1 * NS + 0.15 * NS)
        assert out.a_l == pytest.approx(2 * NS + 0.15 * NS)

    def test_overlapping_windows_reach_d0(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, win(1 * NS, 2 * NS)),
                  CtrlInput(1, win(1 * NS, 2 * NS))]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        # Perfect alignment at 1 ns gives d0 = 0.06 ns.
        assert out.a_s == pytest.approx(1 * NS + 0.06 * NS)

    def test_pin2pin_model_sees_no_speedup(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, win(1 * NS, 2 * NS)),
                  CtrlInput(1, win(1 * NS, 2 * NS))]
        out = ctrl_response_window(cell, PinToPinModel(), inputs, REF_LOAD)
        assert out.a_s == pytest.approx(1 * NS + 0.15 * NS)

    def test_disjoint_windows_cannot_align(self):
        cell = make_nand(2)
        # Pin 1 arrives far after pin 0's window: beyond the saturation
        # skew (0.3 ns) the lagging transition is irrelevant.
        inputs = [CtrlInput(0, win(1 * NS, 1 * NS)),
                  CtrlInput(1, win(3 * NS, 3 * NS))]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        assert out.a_s == pytest.approx(1 * NS + 0.15 * NS)

    def test_partial_overlap_interpolates(self):
        cell = make_nand(2)
        # Best feasible skew is 0.15 ns (half of s_pos = 0.3 ns).
        inputs = [CtrlInput(0, win(1 * NS, 1 * NS)),
                  CtrlInput(1, win(1.15 * NS, 1.15 * NS))]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        expected = 1 * NS + 0.5 * (0.06 + 0.15) * NS
        assert out.a_s == pytest.approx(expected)

    def test_latest_is_max_of_potential_singles(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, win(1 * NS, 2 * NS)),
                  CtrlInput(1, win(1 * NS, 3 * NS))]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        assert out.a_l == pytest.approx(3 * NS + 0.17 * NS)

    def test_definite_input_caps_latest(self):
        cell = make_nand(2)
        inputs = [
            CtrlInput(0, win(1 * NS, 2 * NS, state=DEFINITE)),
            CtrlInput(1, win(1 * NS, 3 * NS)),
        ]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        # Pin 0 definitely switches by 2 ns, guaranteeing the output by
        # 2 ns + its pin delay; pin 1 can only speed things up.
        assert out.a_l == pytest.approx(2 * NS + 0.15 * NS)
        assert out.is_definite

    def test_multi_input_scale_tightens_min(self):
        cell = make_nand(3)
        inputs = [CtrlInput(p, win(1 * NS, 1 * NS)) for p in range(3)]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        # multi_scale["3"] = 0.8 applies on top of the best pair's d0.
        assert out.a_s <= 1 * NS + 0.06 * NS * 0.8 + 1e-15

    def test_output_state_potential_without_definite(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, win(1 * NS, 2 * NS)),
                  CtrlInput(1, win(1 * NS, 2 * NS))]
        out = ctrl_response_window(cell, VShapeModel(), inputs, REF_LOAD)
        assert out.state == POTENTIAL


class TestNonCtrlResponseWindow:
    def test_bounds_over_pin_paths(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, win(1 * NS, 2 * NS)),
                  CtrlInput(1, win(1.5 * NS, 2.5 * NS))]
        out = nonctrl_response_window(cell, inputs, REF_LOAD)
        # Non-ctrl arc delays: pin0 0.08ns + 0.1*T, pin1 0.096ns + 0.1*T.
        assert out.a_s == pytest.approx(1 * NS + 0.08 * NS + 0.05 * NS)
        assert out.a_l == pytest.approx(2.5 * NS + 0.096 * NS + 0.05 * NS)

    def test_definite_raises_earliest(self):
        cell = make_nand(2)
        inputs = [
            CtrlInput(0, win(1 * NS, 2 * NS)),
            CtrlInput(1, win(1.5 * NS, 2.5 * NS, state=DEFINITE)),
        ]
        out = nonctrl_response_window(cell, inputs, REF_LOAD)
        # The output cannot settle before the definite switcher's effect.
        assert out.a_s == pytest.approx(1.5 * NS + 0.096 * NS + 0.05 * NS)

    def test_empty_is_impossible(self):
        cell = make_nand(2)
        inputs = [CtrlInput(0, DirWindow.impossible()),
                  CtrlInput(1, DirWindow.impossible())]
        assert not nonctrl_response_window(cell, inputs, REF_LOAD).is_active


class TestArcFaninWindow:
    def test_inverter(self):
        cell = make_inv()
        arcs = [(0, True, win(1 * NS, 2 * NS))]
        out = arc_fanin_window(cell, arcs, False, REF_LOAD)
        assert out.a_s == pytest.approx(1 * NS + 0.05 * NS + 0.05 * NS)
        assert out.a_l == pytest.approx(2 * NS + 0.05 * NS + 0.05 * NS)

    def test_inactive_input_gives_impossible(self):
        cell = make_inv()
        arcs = [(0, True, DirWindow.impossible())]
        assert not arc_fanin_window(cell, arcs, False, REF_LOAD).is_active

    def test_definite_single_arc_propagates_state(self):
        cell = make_inv()
        arcs = [(0, True, win(1 * NS, 2 * NS, state=DEFINITE))]
        out = arc_fanin_window(cell, arcs, False, REF_LOAD)
        assert out.is_definite
