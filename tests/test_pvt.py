"""Multi-corner PVT tests: batched corner STA vs. independent runs.

The acceptance bar of the corner-batched engine is exactness: corner
column ``c`` of one batched pass must reproduce, bit for bit, a
single-corner analyzer run with corner ``c``'s library and scalar
derates — on every packaged circuit, for both engines.
"""

import numpy as np
import pytest

from repro.circuit import load_packaged_bench
from repro.fuzz.generate import generate_case
from repro.fuzz.oracles import run_oracle
from repro.pvt import (
    Corner,
    CornerAnalyzer,
    CornerLibrary,
    STANDARD_CORNERS,
    analyze_corners,
    parse_corner,
    parse_corner_list,
    scaled_library,
)
from repro.obs import use_registry
from repro.sta.analysis import PerfConfig, TimingAnalyzer
from repro.sta.compile import LevelCompiledAnalyzer

from .test_perf_parity import assert_results_equal, assert_windows_equal

BENCHES = ["c17", "c432s", "c880s", "c5315s", "c7552s"]


@pytest.fixture(scope="module")
def corner_set(library):
    """The standard 4-corner set with analytically derived libraries."""
    corner_lib = CornerLibrary.derived(
        library, STANDARD_CORNERS.values(), default_corner="typ"
    )
    return corner_lib.ordered()


# ----------------------------------------------------------------------
# The acceptance criterion: batched == N independent single-corner runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench", BENCHES)
def test_batched_corners_bitwise_identical(bench, library, corner_set):
    """One batched N-corner pass == N separate runs, both engines."""
    circuit = load_packaged_bench(bench)
    corners, libraries = corner_set
    batched = CornerAnalyzer(
        circuit, corners, libraries, engine="level"
    ).analyze()
    mirrored = CornerAnalyzer(
        circuit, corners, libraries, engine="gate"
    ).analyze()
    for i, (corner, corner_library) in enumerate(zip(corners, libraries)):
        reference = LevelCompiledAnalyzer(
            circuit, corner_library
        ).analyze_corners(derates=corner.derates)[0]
        assert_results_equal(circuit, reference, batched.results[i])
        assert_results_equal(circuit, reference, mirrored.results[i])


@pytest.mark.parametrize("bench", ["c17", "c432s", "c880s"])
def test_typ_corner_matches_legacy_single_corner_analyze(
    bench, library, corner_set
):
    """The unit-derate typ column == a plain pre-PVT ``analyze`` run."""
    circuit = load_packaged_bench(bench)
    corners, libraries = corner_set
    assert corners[0].name == "typ"
    assert corners[0].derates == (1.0, 1.0)
    legacy = TimingAnalyzer(
        circuit, library, perf=PerfConfig(engine="level")
    ).analyze()
    batched = CornerAnalyzer(circuit, corners, libraries).analyze()
    assert_results_equal(circuit, legacy, batched.results[0])


def test_merged_envelope_contains_every_corner(library, corner_set):
    circuit = load_packaged_bench("c432s")
    corners, libraries = corner_set
    result = CornerAnalyzer(circuit, corners, libraries).analyze()
    for per_corner in result.results:
        for line in circuit.lines:
            merged = result.merged.line(line)
            single = per_corner.line(line)
            for direction in ("rise", "fall"):
                wm = getattr(merged, direction)
                ws = getattr(single, direction)
                if ws.is_active:
                    assert wm.contains_window(ws, tol=0.0), (
                        f"{line}.{direction}"
                    )
    # The envelope extremes are exactly the worst corners' extremes.
    assert result.setup_arrival() == max(
        r.output_max_arrival() for r in result.results
    )
    assert result.hold_arrival() == min(
        r.output_min_arrival() for r in result.results
    )


def test_corners_oracle_clean_run():
    """>= 100 random corner cases pass the differential oracle."""
    for index in range(100):
        case = generate_case("corners", seed=2026, index=index)
        result = run_oracle(case)
        assert result.ok, f"case {index}: {result.detail}"


# ----------------------------------------------------------------------
# Corner definitions and derates
# ----------------------------------------------------------------------
class TestCorner:
    def test_standard_scales_are_sane(self):
        assert STANDARD_CORNERS["typ"].delay_scale() == 1.0
        assert 1.5 < STANDARD_CORNERS["slow"].delay_scale() < 2.5
        assert 0.4 < STANDARD_CORNERS["fast"].delay_scale() < 0.7

    def test_technology_parameterization(self):
        slow = STANDARD_CORNERS["slow"].technology()
        fast = STANDARD_CORNERS["fast"].technology()
        assert slow.vdd == 2.97 and fast.vdd == 3.63
        assert slow.kpn < fast.kpn  # slow silicon, hot -> less drive
        assert slow.vtn < fast.vtn  # thresholds drop when hot
        assert slow.name.endswith("@slow")

    def test_validation(self):
        with pytest.raises(ValueError, match="derate_early"):
            Corner("bad", derate_early=1.2, derate_late=1.0)
        with pytest.raises(ValueError, match="finite"):
            Corner("bad", process=0.0)
        with pytest.raises(ValueError, match="overdrive"):
            Corner("bad", vdd=0.5).technology()

    def test_parse_specs(self):
        assert parse_corner("slow") == STANDARD_CORNERS["slow"]
        inline = parse_corner("cold:process=1.1:temp=-40:late=1.02")
        assert inline == Corner(
            "cold", process=1.1, temp_c=-40.0, derate_late=1.02
        )
        corners = parse_corner_list("typ,fast,cold:temp=-40")
        assert [c.name for c in corners] == ["typ", "fast", "cold"]
        with pytest.raises(ValueError, match="unknown corner"):
            parse_corner("nope")
        with pytest.raises(ValueError, match="duplicate"):
            parse_corner_list("typ,typ")

    def test_unit_scale_rescale_is_bitwise_identity(self, library):
        scaled = scaled_library(library, Corner("unit"))
        base = library.to_dict()["cells"]
        assert scaled.to_dict()["cells"] == base


# ----------------------------------------------------------------------
# Engine API contracts under a corner-batched compile
# ----------------------------------------------------------------------
class TestCornerCompile:
    def test_factors_and_boundaries_rejected(self, corner_set):
        circuit = load_packaged_bench("c17")
        corners, libraries = corner_set
        engine = LevelCompiledAnalyzer(circuit, libraries)
        assert engine.compiled.n_corners == len(corners)
        with pytest.raises(ValueError, match="corner"):
            engine.propagate(
                factors=np.ones((engine.compiled.n_gates, 2))
            )
        with pytest.raises(ValueError, match="corner"):
            engine.propagate(boundaries=[((0.0, 0.0), (0.2e-9, 0.2e-9))])

    def test_patching_requires_single_corner(self, corner_set):
        circuit = load_packaged_bench("c17")
        _, libraries = corner_set
        engine = LevelCompiledAnalyzer(circuit, libraries)
        gate_line = next(iter(circuit.gates))
        assert not engine.compiled.can_patch(gate_line)
        with pytest.raises(ValueError, match="corner"):
            engine.compiled.patch_gate(gate_line, 1e-13)
        single = LevelCompiledAnalyzer(circuit, libraries[0])
        assert single.compiled.n_corners == 1

    def test_derate_shape_validation(self, library):
        circuit = load_packaged_bench("c17")
        engine = LevelCompiledAnalyzer(circuit, library)
        with pytest.raises(ValueError, match="derate"):
            engine.propagate(derates=(np.ones(3), np.ones(3)))

    def test_corner_gauge_and_counters(self, corner_set):
        circuit = load_packaged_bench("c17")
        corners, libraries = corner_set
        with use_registry() as registry:
            LevelCompiledAnalyzer(circuit, libraries)
            assert registry.gauge("sta.compile.corners").value == len(
                corners
            )
            LevelCompiledAnalyzer(circuit, libraries[0])
            assert registry.gauge("sta.compile.corners").value == 1

    def test_structural_mismatch_rejected(self, library, corner_set):
        circuit = load_packaged_bench("c17")
        _, libraries = corner_set
        import dataclasses

        broken = dataclasses.replace(libraries[1])
        cell = broken.cells["NAND2"]
        broken.cells = dict(broken.cells)
        broken.cells["NAND2"] = dataclasses.replace(
            cell,
            arcs={
                k: a for k, a in cell.arcs.items() if not k.startswith("0")
            },
        )
        with pytest.raises(ValueError, match="disagrees"):
            LevelCompiledAnalyzer(circuit, [libraries[0], broken])


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_timing_analyzer_delegate(self, library, corner_set):
        circuit = load_packaged_bench("c17")
        corners, libraries = corner_set
        direct = analyze_corners(circuit, corners, libraries)
        via_analyzer = TimingAnalyzer(
            circuit, library, perf=PerfConfig(engine="level")
        ).analyze_corners(corners, libraries)
        for a, b in zip(direct.results, via_analyzer.results):
            assert_results_equal(circuit, a, b)
        by_name = via_analyzer.result("slow")
        assert by_name is via_analyzer.results[
            [c.name for c in corners].index("slow")
        ]
        with pytest.raises(KeyError):
            via_analyzer.result("nope")

    def test_delegate_derives_libraries_when_omitted(self, library):
        circuit = load_packaged_bench("c17")
        corners = [STANDARD_CORNERS["typ"], STANDARD_CORNERS["slow"]]
        result = TimingAnalyzer(
            circuit, library, perf=PerfConfig(engine="level")
        ).analyze_corners(corners)
        expected = analyze_corners(
            circuit,
            corners,
            [scaled_library(library, c) for c in corners],
        )
        for a, b in zip(expected.results, result.results):
            assert_results_equal(circuit, a, b)

    def test_corner_library_round_trip(self, tmp_path, library, corner_set):
        corners, _ = corner_set
        corner_lib = CornerLibrary.derived(library, corners)
        path = tmp_path / "corners.json"
        corner_lib.save(path)
        loaded = CornerLibrary.load(path)
        assert loaded.names == corner_lib.names
        assert loaded.default_corner == corner_lib.default_corner
        circuit = load_packaged_bench("c17")
        a = CornerAnalyzer.from_library(circuit, corner_lib).analyze()
        b = CornerAnalyzer.from_library(circuit, loaded).analyze()
        for ra, rb in zip(a.results, b.results):
            assert_results_equal(circuit, ra, rb)

    def test_sigma_zero_mc_at_corner_equals_deterministic(
        self, corner_set
    ):
        """sigma-0 one-sample MC with derates == the corner column."""
        from repro.stat import MonteCarloEngine
        from repro.sta.analysis import StaResult

        circuit = load_packaged_bench("c432s")
        corners, libraries = corner_set
        corner = corners[-1]  # the derated slow corner
        deterministic = CornerAnalyzer(
            circuit, [corner], [libraries[-1]]
        ).analyze().results[0]
        for engine in ("gate", "level"):
            mc = MonteCarloEngine(
                circuit,
                libraries[-1],
                engine=engine,
                derate=corner.derates,
            )
            windows = mc.propagate(np.ones((mc.n_gates, 1)))
            sampled = StaResult(circuit, {
                line: mc.line_timing_at(windows, line, 0)
                for line in circuit.lines
            })
            assert_results_equal(circuit, deterministic, sampled)
