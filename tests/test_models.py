"""Unit tests for the delay models over synthetic cell data.

The synthetic NAND2 has exactly known arcs (delay = 0.10ns + 0.1*T on pin
0, 0.12ns + 0.1*T on pin 1), a constant zero-skew delay D0 = 0.06 ns and
constant saturation skews, so every model prediction can be checked by
hand.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    InputEvent,
    JunModel,
    NabaviModel,
    PinToPinModel,
    VShapeModel,
)
from tests.synthetic import REF_LOAD, make_inv, make_nand, make_nor, make_xor

NS = 1e-9


def fall(pin, arrival, trans=0.5 * NS):
    return InputEvent(pin, arrival, trans, rising=False)


def rise(pin, arrival, trans=0.5 * NS):
    return InputEvent(pin, arrival, trans, rising=True)


@pytest.fixture
def nand2():
    return make_nand(2)


@pytest.fixture
def vmodel():
    return VShapeModel()


class TestVShapeGeometry:
    def test_vertex_and_tails(self, nand2, vmodel):
        shape = vmodel.vshape(nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD)
        # Pin tails: 0.10 + 0.1*0.5 = 0.15ns (pin0), 0.12 + 0.05 = 0.17ns.
        assert shape.dr_p == pytest.approx(0.15 * NS)
        assert shape.dr_q == pytest.approx(0.17 * NS)
        assert shape.d0 == pytest.approx(0.06 * NS)
        assert shape.delay(0.0) == pytest.approx(0.06 * NS)
        assert shape.delay(10 * NS) == pytest.approx(0.15 * NS)
        assert shape.delay(-10 * NS) == pytest.approx(0.17 * NS)

    def test_linear_interpolation_between_anchors(self, nand2, vmodel):
        shape = vmodel.vshape(nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD)
        mid = shape.delay(0.15 * NS)  # halfway to s_pos = 0.3 ns
        assert mid == pytest.approx(0.5 * (0.06 + 0.15) * NS)

    def test_min_delay_at_zero_skew_claim1(self, nand2, vmodel):
        shape = vmodel.vshape(nand2, 0, 1, 0.4 * NS, 0.9 * NS, REF_LOAD)
        assert shape.min_delay() == shape.delay(0.0)
        for skew in (-0.5 * NS, -0.1 * NS, 0.05 * NS, 0.2 * NS, 1.0 * NS):
            assert shape.delay(skew) >= shape.min_delay()

    def test_mirrored_pair_swaps_sides(self, nand2, vmodel):
        fwd = vmodel.vshape(nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD)
        rev = vmodel.vshape(nand2, 1, 0, 0.5 * NS, 0.5 * NS, REF_LOAD)
        assert rev.dr_p == pytest.approx(fwd.dr_q)
        assert rev.dr_q == pytest.approx(fwd.dr_p)
        assert rev.s_pos == pytest.approx(fwd.s_neg)
        assert rev.s_neg == pytest.approx(fwd.s_pos)
        assert rev.delay(0.1 * NS) == pytest.approx(fwd.delay(-0.1 * NS))

    def test_d0_clamped_below_tails(self, vmodel):
        # A cell whose fitted d0 would exceed the pin delay must clamp.
        cell = make_nand(2, d0=0.5 * NS)
        shape = vmodel.vshape(cell, 0, 1, 0.1 * NS, 0.1 * NS, REF_LOAD)
        assert shape.d0 <= min(shape.dr_p, shape.dr_q)

    def test_load_shifts_all_levels(self, nand2, vmodel):
        light = vmodel.vshape(nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD)
        heavy = vmodel.vshape(
            nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD + 10e-15
        )
        extra = 4e3 * 10e-15
        assert heavy.d0 - light.d0 == pytest.approx(extra)
        assert heavy.dr_p - light.dr_p == pytest.approx(extra)

    @given(
        skew=st.floats(min_value=-2e-9, max_value=2e-9),
        t_p=st.floats(min_value=0.1e-9, max_value=1.8e-9),
        t_q=st.floats(min_value=0.1e-9, max_value=1.8e-9),
    )
    @settings(max_examples=80, deadline=None)
    def test_delay_bounded_by_anchors(self, skew, t_p, t_q):
        shape = VShapeModel().vshape(
            make_nand(2), 0, 1, t_p, t_q, REF_LOAD
        )
        d = shape.delay(skew)
        assert shape.d0 - 1e-15 <= d <= shape.max_delay() + 1e-15


class TestTransVShape:
    def test_tails_and_vertex(self, nand2, vmodel):
        shape = vmodel.trans_vshape(nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD)
        # Synthetic arc trans: 0.15 + 0.5*0.5 = 0.4 ns for both tails.
        assert shape.t_p == pytest.approx(0.4 * NS)
        assert shape.t_q == pytest.approx(0.4 * NS)
        assert shape.min_trans() == pytest.approx(0.10 * NS)
        assert shape.trans(5 * NS) == pytest.approx(0.4 * NS)
        assert shape.trans(shape.minimizing_skew()) == shape.min_trans()

    def test_vertex_clamped_into_saturation_range(self, vmodel):
        cell = make_nand(2)
        shape = vmodel.trans_vshape(cell, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD)
        assert -shape.s_neg <= shape.vertex_skew <= shape.s_pos


class TestControllingResponse:
    def test_single_event_is_pin_to_pin(self, nand2, vmodel):
        delay, trans = vmodel.controlling_response(
            nand2, [fall(0, 1 * NS, 0.5 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.15 * NS)
        assert trans == pytest.approx(0.4 * NS)

    def test_zero_skew_pair_hits_d0(self, nand2, vmodel):
        delay, _ = vmodel.controlling_response(
            nand2, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.06 * NS)

    def test_large_skew_matches_leading_pin(self, nand2, vmodel):
        delay, _ = vmodel.controlling_response(
            nand2, [fall(0, 1 * NS), fall(1, 3 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.15 * NS)

    def test_lagging_fast_pin_can_win(self, nand2, vmodel):
        # Pin 1 leads but pin 0 arrives soon after; output arrival is the
        # V-shape value, earlier than pin 1's own pin-to-pin path.
        delay, _ = vmodel.controlling_response(
            nand2, [fall(1, 1 * NS), fall(0, 1.05 * NS)], REF_LOAD
        )
        single, _ = vmodel.controlling_response(
            nand2, [fall(1, 1 * NS)], REF_LOAD
        )
        assert delay < single

    def test_three_inputs_faster_than_two(self, vmodel):
        nand3 = make_nand(3)
        two, _ = vmodel.controlling_response(
            nand3, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        three, _ = vmodel.controlling_response(
            nand3, [fall(0, 1 * NS), fall(1, 1 * NS), fall(2, 1 * NS)],
            REF_LOAD,
        )
        assert three == pytest.approx(two * 0.8)  # multi_scale["3"]

    def test_distant_third_input_does_not_speed_up(self, vmodel):
        nand3 = make_nand(3)
        two, _ = vmodel.controlling_response(
            nand3, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        with_late, _ = vmodel.controlling_response(
            nand3,
            [fall(0, 1 * NS), fall(1, 1 * NS), fall(2, 9 * NS)],
            REF_LOAD,
        )
        assert with_late == pytest.approx(two)

    def test_pair_scale_applied(self, vmodel):
        nand3 = make_nand(3)
        base, _ = vmodel.controlling_response(
            nand3, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        scaled, _ = vmodel.controlling_response(
            nand3, [fall(1, 1 * NS), fall(2, 1 * NS)], REF_LOAD
        )
        # pair_scale["1-2"] = 1.1 in the synthetic cell.
        assert scaled == pytest.approx(base * 1.1, rel=1e-6)


class TestPinToPinModel:
    def test_ignores_simultaneous_speedup(self, nand2):
        model = PinToPinModel()
        single, _ = model.controlling_response(
            nand2, [fall(0, 1 * NS)], REF_LOAD
        )
        both, _ = model.controlling_response(
            nand2, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        assert both == pytest.approx(single)

    def test_fastest_path_wins(self, nand2):
        model = PinToPinModel()
        # Pin 1 leads by far; its path sets the output.
        delay, _ = model.controlling_response(
            nand2, [fall(1, 1 * NS), fall(0, 5 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.17 * NS)


class TestJunModel:
    def test_matches_d0_at_zero_skew(self, nand2):
        delay, _ = JunModel().controlling_response(
            nand2, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.06 * NS)

    def test_fails_at_large_skew(self, nand2):
        """Jun's collapse does not saturate to the pin-to-pin tail."""
        vshape = VShapeModel()
        skewed = [fall(0, 1 * NS), fall(1, 2.5 * NS)]
        jun_d, _ = JunModel().controlling_response(nand2, skewed, REF_LOAD)
        v_d, _ = vshape.controlling_response(nand2, skewed, REF_LOAD)
        assert abs(jun_d - v_d) > 0.2 * v_d

    def test_single_event_falls_back_to_pin(self, nand2):
        delay, _ = JunModel().controlling_response(
            nand2, [fall(0, 1 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.15 * NS)


class TestNabaviModel:
    def test_position_blind_pin_delay(self):
        nand2 = make_nand(2)
        model = NabaviModel()
        d0, _ = model.pin_to_pin(nand2, 0, False, True, 0.5 * NS, REF_LOAD)
        d1, _ = model.pin_to_pin(nand2, 1, False, True, 0.5 * NS, REF_LOAD)
        assert d0 == pytest.approx(d1)  # ignores the position difference
        true1 = nand2.arc(1, False, True).delay(0.5 * NS)
        assert d1 != pytest.approx(true1)

    def test_good_when_equal_transition_times(self, nand2):
        delay, _ = NabaviModel().controlling_response(
            nand2, [fall(0, 1 * NS), fall(1, 1 * NS)], REF_LOAD
        )
        assert delay == pytest.approx(0.06 * NS, rel=1e-6)

    def test_degrades_with_unequal_transition_times(self, nand2):
        """Start-time alignment shifts the equivalent arrival."""
        events = [fall(0, 1 * NS, 0.2 * NS), fall(1, 1 * NS, 1.6 * NS)]
        nab_d, _ = NabaviModel().controlling_response(nand2, events, REF_LOAD)
        v_d, _ = VShapeModel().controlling_response(nand2, events, REF_LOAD)
        assert nab_d != pytest.approx(v_d, rel=0.05)


class TestOutputEventSemantics:
    def test_nand_controlled_rise(self, nand2, vmodel):
        out = vmodel.output_event(
            nand2, [fall(0, 1 * NS), fall(1, 1 * NS)], {}, REF_LOAD
        )
        assert out.rising is True
        assert out.arrival == pytest.approx(1 * NS + 0.06 * NS)

    def test_nand_noncontrolled_fall_uses_latest(self, nand2, vmodel):
        out = vmodel.output_event(
            nand2, [rise(0, 1 * NS), rise(1, 2 * NS)], {}, REF_LOAD
        )
        assert out.rising is False
        # max over pin-to-pin: pin0: 1ns + (0.8*0.10 + 0.05)ns,
        # pin1: 2ns + (0.8*0.12 + 0.05)ns -> pin1 wins.
        assert out.arrival == pytest.approx(2 * NS + 0.096 * NS + 0.05 * NS)

    def test_no_output_change_returns_none(self, nand2, vmodel):
        # One input falls while the other is steady 0: output stays 1.
        out = vmodel.output_event(nand2, [fall(0, 1 * NS)], {1: 0}, REF_LOAD)
        assert out is None

    def test_single_controlling_event_with_steady_noncontrolling(
        self, nand2, vmodel
    ):
        out = vmodel.output_event(nand2, [fall(0, 1 * NS)], {1: 1}, REF_LOAD)
        assert out.rising is True
        assert out.arrival == pytest.approx(1 * NS + 0.15 * NS)

    def test_unspecified_pin_rejected(self, nand2, vmodel):
        with pytest.raises(ValueError):
            vmodel.output_event(nand2, [fall(0, 1 * NS)], {}, REF_LOAD)

    def test_conflicting_pin_rejected(self, nand2, vmodel):
        with pytest.raises(ValueError):
            vmodel.output_event(nand2, [fall(0, 1 * NS)], {0: 1, 1: 1},
                                REF_LOAD)

    def test_inverter_event(self, vmodel):
        inv = make_inv()
        out = vmodel.output_event(inv, [rise(0, 1 * NS, 0.5 * NS)], {}, REF_LOAD)
        assert out.rising is False
        assert out.arrival == pytest.approx(1 * NS + 0.05 * NS + 0.05 * NS)

    def test_xor_uses_context_dependent_arc(self, vmodel):
        xor = make_xor()
        out0 = vmodel.output_event(xor, [rise(0, 1 * NS)], {1: 0}, REF_LOAD)
        out1 = vmodel.output_event(xor, [rise(0, 1 * NS)], {1: 1}, REF_LOAD)
        assert out0.rising is True
        assert out1.rising is False

    def test_nor_controlled_fall(self, vmodel):
        nor = make_nor(2)
        out = vmodel.output_event(
            nor, [rise(0, 1 * NS), rise(1, 1 * NS)], {}, REF_LOAD
        )
        assert out.rising is False
        assert out.arrival == pytest.approx(1 * NS + 0.05 * NS)

    def test_default_load_is_reference(self, nand2, vmodel):
        out_default = vmodel.output_event(nand2, [fall(0, 1 * NS)], {1: 1})
        out_ref = vmodel.output_event(
            nand2, [fall(0, 1 * NS)], {1: 1}, REF_LOAD
        )
        assert out_default.arrival == out_ref.arrival
