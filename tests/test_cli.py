"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sta_defaults(self):
        args = build_parser().parse_args(["sta", "c17"])
        assert args.circuit == "c17"
        assert args.max_outputs == 8

    def test_atpg_flags(self):
        args = build_parser().parse_args(
            ["atpg", "c432s", "--no-itr", "--faults", "5"]
        )
        assert args.itr is False
        assert args.faults == 5


class TestCommands:
    def test_bench_lists_circuits(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out
        assert "c7552s" in out

    def test_sta_on_c17(self, capsys):
        assert main(["sta", "c17"]) == 0
        out = capsys.readouterr().out
        assert "min-delay proposed" in out
        assert "ratio" in out

    def test_sta_on_bench_file(self, capsys, tmp_path):
        path = tmp_path / "tiny.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
        )
        assert main(["sta", str(path)]) == 0
        out = capsys.readouterr().out
        assert "z" in out

    def test_sim_prints_events(self, capsys):
        assert main(["sim", "c17", "11111", "01111"]) == 0
        out = capsys.readouterr().out
        assert "(static)" in out
        assert "G22" in out

    def test_sim_rejects_wrong_vector_length(self, capsys):
        assert main(["sim", "c17", "111", "000"]) == 2
        err = capsys.readouterr().err
        assert "5 bits" in err

    def test_atpg_compare_runs(self, capsys):
        code = main([
            "atpg", "c17", "--faults", "2", "--compare",
            "--backtrack-limit", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "with ITR" in out
        assert "no ITR" in out
        assert "efficiency" in out
