"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.obs import get_registry


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sta_defaults(self):
        args = build_parser().parse_args(["sta", "c17"])
        assert args.circuit == "c17"
        assert args.max_outputs == 8

    def test_atpg_flags(self):
        args = build_parser().parse_args(
            ["atpg", "c432s", "--no-itr", "--faults", "5"]
        )
        assert args.itr is False
        assert args.faults == 5

    def test_no_spice_check_flag(self):
        args = build_parser().parse_args(["atpg", "c17", "--no-spice-check"])
        assert args.spice_check == 0

    def test_global_flags_accepted_on_both_sides(self):
        before = build_parser().parse_args(["--stats", "bench"])
        after = build_parser().parse_args(["bench", "--stats"])
        assert getattr(before, "stats", False)
        assert getattr(after, "stats", False)
        # Unset global flags stay absent (argparse.SUPPRESS defaults).
        plain = build_parser().parse_args(["bench"])
        assert not hasattr(plain, "stats")

    def test_verbose_counts(self):
        args = build_parser().parse_args(["-vv", "sta", "c17"])
        assert args.verbose == 2

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.cells is None
        assert args.jobs is None
        assert args.cache is True
        assert args.force is False

    def test_characterize_flags(self):
        args = build_parser().parse_args([
            "characterize", "--cells", "inv,nand2", "--jobs", "4",
            "--no-cache", "--force", "--t-grid", "0.2,0.6",
        ])
        assert args.cells == "inv,nand2"
        assert args.jobs == 4
        assert args.cache is False
        assert args.force is True
        assert args.t_grid == "0.2,0.6"

    def test_cell_spec_parsing(self):
        from repro.cli import _parse_cells

        assert _parse_cells("inv,nand2,nor3") == (
            ("inv", 1), ("nand", 2), ("nor", 3),
        )
        assert _parse_cells("buf") == (("buf", 1),)
        assert _parse_cells("xor") == (("xor", 2),)
        with pytest.raises(ValueError):
            _parse_cells("frob2")
        with pytest.raises(ValueError):
            _parse_cells("")


class TestCommands:
    def test_bench_lists_circuits(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out
        assert "c7552s" in out

    def test_sta_on_c17(self, capsys):
        assert main(["sta", "c17"]) == 0
        out = capsys.readouterr().out
        assert "min-delay proposed" in out
        assert "ratio" in out

    def test_sta_on_bench_file(self, capsys, tmp_path):
        path = tmp_path / "tiny.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
        )
        assert main(["sta", str(path)]) == 0
        out = capsys.readouterr().out
        assert "z" in out

    def test_sim_prints_events(self, capsys):
        assert main(["sim", "c17", "11111", "01111"]) == 0
        out = capsys.readouterr().out
        assert "(static)" in out
        assert "G22" in out

    def test_sim_rejects_wrong_vector_length(self, capsys):
        assert main(["sim", "c17", "111", "000"]) == 2
        err = capsys.readouterr().err
        assert "5 bits" in err

    def test_atpg_compare_runs(self, capsys):
        code = main([
            "atpg", "c17", "--faults", "2", "--compare",
            "--backtrack-limit", "4", "--no-spice-check",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "with ITR" in out
        assert "no ITR" in out
        assert "efficiency" in out


class TestMcCommand:
    def test_mc_parser_defaults(self):
        args = build_parser().parse_args(["mc", "c17"])
        assert args.samples == 256
        assert args.seed == 0
        assert args.jobs == 1
        assert args.model == "vshape"
        assert args.quantiles == "0.5,0.95,0.99"

    def test_mc_on_c17_writes_summary(self, capsys, tmp_path):
        out_path = tmp_path / "mc.json"
        code = main([
            "mc", "c17", "--samples", "32", "--seed", "7", "--block", "16",
            "--sigma", "0.08", "--json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "monte carlo [vshape]" in out
        assert "criticality" in out
        summary = json.loads(out_path.read_text())
        assert summary["samples"] == 32
        assert summary["seed"] == 7
        q = {float(k): v for k, v in summary["quantiles_s"].items()}
        assert q[0.5] <= q[0.95] <= q[0.99]

    def test_mc_rejects_bad_quantiles(self, capsys):
        assert main(["mc", "c17", "--quantiles", "1.5"]) == 2
        assert "quantiles" in capsys.readouterr().err

    def test_mc_rejects_negative_sigma(self, capsys):
        assert main(["mc", "c17", "--sigma", "-0.1"]) == 2

    def test_mc_sigma_overrides(self):
        args = build_parser().parse_args([
            "mc", "c17", "--sigma", "0.2", "--sigma-ind", "0.01",
        ])
        assert args.sigma == 0.2
        assert args.sigma_corr is None
        assert args.sigma_ind == 0.01


class TestCornerFlags:
    def test_sta_multi_corner_table(self, capsys):
        assert main(["sta", "c17", "--corners", "typ,slow"]) == 0
        out = capsys.readouterr().out
        assert "corner" in out
        assert "slow" in out
        assert "merged" in out

    def test_sta_rejects_bad_corner_spec(self, capsys):
        assert main(["sta", "c17", "--corners", "typ:bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_sta_corner_library_subset(self, capsys, tmp_path):
        from repro.characterize import CellLibrary
        from repro.pvt import STANDARD_CORNERS, CornerLibrary

        path = tmp_path / "corners.json"
        CornerLibrary.derived(
            CellLibrary.load_default(),
            [STANDARD_CORNERS["typ"], STANDARD_CORNERS["slow"]],
        ).save(path)
        assert main([
            "sta", "c17", "--corner-library", str(path),
            "--corners", "slow",
        ]) == 0
        out = capsys.readouterr().out
        assert "slow" in out

    def test_sta_rejects_unknown_library_corner(self, capsys, tmp_path):
        from repro.characterize import CellLibrary
        from repro.pvt import STANDARD_CORNERS, CornerLibrary

        path = tmp_path / "corners.json"
        CornerLibrary.derived(
            CellLibrary.load_default(), [STANDARD_CORNERS["typ"]]
        ).save(path)
        assert main([
            "sta", "c17", "--corner-library", str(path),
            "--corners", "nope",
        ]) == 2

    def test_mc_multi_corner_summary(self, capsys, tmp_path):
        out_path = tmp_path / "mc_corners.json"
        code = main([
            "mc", "c17", "--samples", "16", "--block", "8",
            "--corners", "typ,slow", "--json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "slow" in out
        summary = json.loads(out_path.read_text())
        assert set(summary["corners"]) == {"typ", "slow"}

    def test_characterize_corners_parser(self):
        args = build_parser().parse_args([
            "characterize", "--corners", "typ,slow", "--cells", "INV",
        ])
        assert args.corners == "typ,slow"


class TestCharacterizeCommand:
    ARGS = [
        "characterize", "--cells", "inv",
        "--t-grid", "0.15,0.4,0.9", "--pair-t-grid", "0.2,0.5,1.0",
        "--skews-per-side", "3", "--jobs", "1",
    ]

    def test_characterize_builds_and_caches(self, tmp_path, capsys):
        from repro.characterize import CellLibrary
        from repro.obs import snapshot_from_trace, read_trace

        out = tmp_path / "lib" / "tiny.json"  # parent dir created by save
        cache = tmp_path / "cache"
        trace1 = tmp_path / "cold.jsonl"
        argv = self.ARGS + [
            "--out", str(out), "--cache-dir", str(cache),
        ]
        assert main(argv + ["--trace-json", str(trace1)]) == 0
        assert "wrote" in capsys.readouterr().out
        library = CellLibrary.load(out)
        assert "INV" in library
        assert library.meta["jobs"] == 1
        assert "build_seconds" in library.meta
        cold = snapshot_from_trace(read_trace(trace1))
        assert cold["counters"]["characterize.simulations"] > 0
        assert cold["counters"]["characterize.cache.misses"] > 0

        # Warm re-run: every sweep served from cache, zero simulations.
        trace2 = tmp_path / "warm.jsonl"
        assert main(argv + ["--trace-json", str(trace2)]) == 0
        warm = snapshot_from_trace(read_trace(trace2))
        assert warm["counters"].get("characterize.simulations", 0) == 0
        assert warm["counters"]["characterize.cache.hits"] > 0

    def test_characterize_rejects_bad_cells(self, tmp_path, capsys):
        assert main([
            "characterize", "--cells", "frobnicator",
            "--out", str(tmp_path / "x.json"),
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestInstrumentationFlags:
    def test_stats_prints_metrics_summary(self, capsys):
        code = main([
            "atpg", "c17", "--faults", "2", "--stats", "--no-spice-check",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "atpg.decisions" in out
        assert "itr.refinements" in out
        # The CLI restores the disabled registry after the command.
        assert not get_registry().enabled

    def test_stats_includes_spice_counters_with_check(self, capsys):
        code = main(["atpg", "c17", "--faults", "4", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spice.newton_iterations" in out
        assert "spice check" in out

    def test_trace_json_emits_parseable_lines(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main([
            "atpg", "c17", "--faults", "2", "--no-spice-check",
            "--trace-json", str(trace),
        ])
        assert code == 0
        events = [
            json.loads(line)
            for line in trace.read_text().strip().splitlines()
        ]
        assert events[0]["type"] == "meta"
        kinds = {e["type"] for e in events}
        assert "counter" in kinds
        assert "span" in kinds
        names = {e.get("name") for e in events}
        assert "atpg.decisions" in names
        assert "cli.atpg" in names

    def test_verbose_enables_info_logging(self, capsys):
        code = main([
            "-v", "atpg", "c17", "--faults", "2", "--no-spice-check",
        ])
        assert code == 0
        # -v routes effort diagnostics through logging (stderr handler).
        captured = capsys.readouterr()
        assert "effort: decisions=" in captured.err
        logging.basicConfig(level=logging.WARNING, force=True)

    def test_quiet_by_default(self, capsys):
        code = main([
            "atpg", "c17", "--faults", "2", "--no-spice-check",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "effort:" not in captured.out
        assert "effort:" not in captured.err
        logging.basicConfig(level=logging.WARNING, force=True)


class TestObsCommand:
    @pytest.fixture()
    def trace(self, tmp_path):
        path = tmp_path / "atpg-trace.jsonl"
        assert main([
            "atpg", "c17", "--faults", "2", "--no-spice-check",
            "--trace-json", str(path),
        ]) == 0
        return path

    def test_obs_parser(self):
        args = build_parser().parse_args(["obs", "show", "t.jsonl"])
        assert args.action == "show"
        assert args.trace == "t.jsonl"
        assert args.top == 10
        args = build_parser().parse_args(
            ["obs", "diff", "a.jsonl", "b.jsonl"]
        )
        assert args.other == "b.jsonl"

    def test_show_prints_manifest_metrics_profile(self, trace, capsys):
        capsys.readouterr()
        assert main(["obs", "show", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run manifest:" in out
        assert "repro-sta atpg" in out
        assert "== metrics ==" in out
        assert "atpg.decisions" in out
        assert "self-time profile" in out
        assert "cli.atpg" in out

    def test_prom_exposition(self, trace, capsys):
        capsys.readouterr()
        assert main(["obs", "prom", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_atpg_decisions_total counter" in out
        assert "# TYPE repro_sta_window_width_s summary" in out
        assert 'repro_sta_window_width_s{quantile="0.5"}' in out

    def test_export_chrome_default_path(self, trace, capsys):
        capsys.readouterr()
        assert main(["obs", "export-chrome", str(trace)]) == 0
        out_path = trace.with_suffix(".chrome.json")
        assert "perfetto" in capsys.readouterr().out.lower()
        chrome = json.loads(out_path.read_text())
        assert chrome["metadata"]["run_manifest"]["command"] == (
            "repro-sta atpg"
        )
        names = [e["name"] for e in chrome["traceEvents"]
                 if e["ph"] == "X"]
        assert "cli.atpg" in names

    def test_diff_of_identical_traces(self, trace, capsys):
        capsys.readouterr()
        assert main(["obs", "diff", str(trace), str(trace)]) == 0
        assert "metric-identical" in capsys.readouterr().out

    def test_diff_of_different_runs(self, trace, tmp_path, capsys):
        other = tmp_path / "bigger.jsonl"
        assert main([
            "atpg", "c17", "--faults", "4", "--no-spice-check",
            "--trace-json", str(other),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", str(trace), str(other)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "atpg.faults: 2 -> 4  (+2)" in out
        assert "manifest:" in out  # --faults differs in args

    def test_diff_requires_second_trace(self, trace, capsys):
        assert main(["obs", "diff", str(trace)]) == 2
        assert "two trace files" in capsys.readouterr().err

    def test_unreadable_trace_errors(self, tmp_path, capsys):
        assert main(["obs", "show", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_unreadable_second_trace_errors(self, trace, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "diff", str(trace), str(missing)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_mc_json_embeds_run_manifest(self, tmp_path):
        out_path = tmp_path / "mc.json"
        assert main([
            "mc", "c17", "--samples", "16", "--seed", "3", "--block", "8",
            "--json", str(out_path),
        ]) == 0
        summary = json.loads(out_path.read_text())
        manifest = summary["run_manifest"]
        assert manifest["command"] == "repro-sta mc"
        assert manifest["seeds"] == [3]
        assert manifest["circuit"] == "c17"
