"""Unit tests for ATPG search internals (paths, backtrace, fill order)."""

import pytest

from repro.atpg import AtpgConfig, CrosstalkAtpg, CrosstalkFault
from repro.atpg.search import CrosstalkAtpg as _Atpg
from repro.itr import TwoFrame

NS = 1e-9


@pytest.fixture(scope="module")
def atpg(c17, library):
    return CrosstalkAtpg(c17, library, config=AtpgConfig(backtrack_limit=8))


def fault(aggressor="G10", victim="G16", a_rise=True, v_rise=False):
    return CrosstalkFault(
        aggressor=aggressor, victim=victim,
        aggressor_rising=a_rise, victim_rising=v_rise,
        delta=0.2 * NS, window=0.5 * NS,
    )


class TestPoDepths:
    def test_outputs_have_zero_depth(self, atpg, c17):
        depths = atpg._po_depths()
        for po in c17.outputs:
            assert depths[po] == 0

    def test_depths_decrease_toward_outputs(self, atpg):
        depths = atpg._po_depths()
        # G10 feeds G22 (a PO): depth(G10) = 1.
        assert depths["G10"] == 1
        # G11 feeds G16/G19 which feed POs: depth 2.
        assert depths["G11"] == 2

    def test_memoized(self, atpg):
        assert atpg._po_depths() is atpg._po_depths()


class TestCandidatePaths:
    def test_paths_end_at_outputs(self, atpg, c17):
        for path in atpg._candidate_paths(fault()):
            assert path[0] == "G16"
            assert path[-1] in c17.outputs

    def test_paths_follow_fanout_edges(self, atpg, c17):
        for path in atpg._candidate_paths(fault()):
            for a, b in zip(path, path[1:]):
                assert a in c17.gates[b].inputs

    def test_deepest_first(self, atpg):
        paths = atpg._candidate_paths(fault(victim="G11"))
        lengths = [len(p) for p in paths]
        assert lengths[0] == max(lengths)

    def test_limit_respected(self, atpg):
        assert len(atpg._candidate_paths(fault(), limit=1)) == 1


class TestPathConstraints:
    def test_strict_constraints_are_steady(self, atpg):
        path = atpg._candidate_paths(fault())[0]
        for _, literal in atpg._path_constraints(path, strict=True):
            assert literal.v1 == literal.v2
            assert literal.v1 is not None

    def test_relaxed_constraints_only_second_frame(self, atpg):
        path = atpg._candidate_paths(fault())[0]
        for _, literal in atpg._path_constraints(path, strict=False):
            assert literal.v1 is None
            assert literal.v2 is not None

    def test_nand_side_inputs_want_ones(self, atpg, c17):
        # Every c17 gate is a NAND: side values must be 1.
        path = atpg._candidate_paths(fault())[0]
        for _, literal in atpg._path_constraints(path, strict=True):
            assert literal == TwoFrame.parse("11")


class TestBacktrace:
    def test_reaches_primary_input(self, atpg, c17):
        values = atpg.engine.initial_values()
        decision = atpg._backtrace(values, "G22", 1, 0)
        assert decision is not None
        pi, frame, bit = decision
        assert c17.is_primary_input(pi)
        assert frame == 1
        assert bit in (0, 1)

    def test_objective_on_pi_returns_it(self, atpg):
        values = atpg.engine.initial_values()
        assert atpg._backtrace(values, "G1", 2, 1) == ("G1", 2, 1)

    def test_inverter_flips_objective(self, library):
        from repro.circuit import Circuit, Gate

        circuit = Circuit(
            "inv2", ["a"], ["z"],
            [Gate("y", "inv", ["a"]), Gate("z", "inv", ["y"])],
        )
        atpg = _Atpg(circuit, library, config=AtpgConfig())
        values = atpg.engine.initial_values()
        assert atpg._backtrace(values, "z", 1, 0) == ("a", 1, 0)
        assert atpg._backtrace(values, "y", 1, 0) == ("a", 1, 1)

    def test_fully_implied_line_returns_none(self, atpg):
        values = atpg.engine.assign(
            atpg.engine.initial_values(), "G1", TwoFrame.parse("00")
        )
        values = atpg.engine.assign(values, "G3", TwoFrame.parse("00"))
        # G10 = NAND(G1, G3) is fully implied to 11: nothing to justify.
        assert atpg._backtrace(values, "G10", 1, 0) is None


class TestFillPreference:
    def test_deterministic_across_calls(self, atpg):
        f = fault()
        a = [atpg._preferred_bit(f, pi, 1) for pi in ("G1", "G2", "G3")]
        b = [atpg._preferred_bit(f, pi, 1) for pi in ("G1", "G2", "G3")]
        assert a == b

    def test_varies_across_inputs_or_faults(self, atpg):
        f1, f2 = fault(), fault(victim="G19")
        bits = {
            atpg._preferred_bit(f, pi, frame)
            for f in (f1, f2)
            for pi in ("G1", "G2", "G3", "G6", "G7")
            for frame in (1, 2)
        }
        assert bits == {0, 1}  # not constant


class TestVectorBuilding:
    def test_vector_covers_all_inputs(self, atpg, c17):
        values = atpg.engine.initial_values()
        vector = atpg._vector_from(values)
        assert set(vector) == set(c17.inputs)
        for stim in vector.values():
            assert stim.v1 in (0, 1) and stim.v2 in (0, 1)

    def test_vector_respects_assigned_values(self, atpg):
        values = atpg.engine.assign(
            atpg.engine.initial_values(), "G1", TwoFrame.parse("10")
        )
        vector = atpg._vector_from(values)
        assert vector["G1"].v1 == 1 and vector["G1"].v2 == 0
