"""Tests for the simultaneous to-non-controlling extension (Λ-shape)."""

import pytest

from repro.models import (
    InputEvent,
    NonCtrlAwareModel,
    PeakShape,
    VShapeModel,
)
from repro.spice import GateCell, RampStimulus, simulate_gate
from repro.tech import GENERIC_05UM as TECH
from tests.synthetic import REF_LOAD, make_nand

NS = 1e-9
ARRIVAL = 2 * NS


def rise(pin, arrival, trans=0.5 * NS):
    return InputEvent(pin, arrival, trans, rising=True)


class TestPeakShapeGeometry:
    def make(self):
        return PeakShape(
            p0=0.15 * NS, s_pos=0.3 * NS, s_neg=0.2 * NS,
            tail_p=0.10 * NS, tail_q=0.09 * NS,
        )

    def test_peak_at_zero(self):
        shape = self.make()
        assert shape.delay(0.0) == 0.15 * NS
        assert shape.delay(0.0) >= shape.delay(0.1 * NS)
        assert shape.delay(0.0) >= shape.delay(-0.1 * NS)

    def test_tails(self):
        shape = self.make()
        assert shape.delay(1.0 * NS) == shape.tail_q
        assert shape.delay(-1.0 * NS) == shape.tail_p

    def test_linear_interpolation(self):
        shape = self.make()
        mid = shape.delay(0.15 * NS)  # halfway to s_pos
        assert mid == pytest.approx(0.5 * (0.15 + 0.09) * NS)

    def test_max_delay_is_peak(self):
        assert self.make().max_delay() == 0.15 * NS


class TestFallbackBehaviour:
    def test_without_data_matches_vshape_model(self):
        """Cells without nonctrl data: extension == base model exactly."""
        nand2 = make_nand(2)  # synthetic cell, nonctrl is None
        events = [rise(0, 1 * NS), rise(1, 1.1 * NS)]
        ext = NonCtrlAwareModel().noncontrolling_response(
            nand2, events, REF_LOAD
        )
        base = VShapeModel().noncontrolling_response(nand2, events, REF_LOAD)
        assert ext == base

    def test_nonctrl_shape_requires_data(self):
        nand2 = make_nand(2)
        with pytest.raises(ValueError):
            NonCtrlAwareModel().nonctrl_shape(
                nand2, 0, 1, 0.5 * NS, 0.5 * NS, REF_LOAD
            )

    def test_ctrl_behaviour_unchanged(self, library):
        nand2 = library.cell("NAND2")
        events = [
            InputEvent(0, 1 * NS, 0.5 * NS, False),
            InputEvent(1, 1 * NS, 0.5 * NS, False),
        ]
        ext = NonCtrlAwareModel().controlling_response(
            nand2, events, nand2.ref_load
        )
        base = VShapeModel().controlling_response(
            nand2, events, nand2.ref_load
        )
        assert ext == base


@pytest.fixture(scope="module")
def nand2_ext(library):
    cell = library.cell("NAND2")
    if cell.nonctrl is None:
        pytest.skip("library lacks nonctrl extension data")
    return cell


class TestCharacterizedExtension:
    def test_peak_exceeds_tails(self, nand2_ext):
        model = NonCtrlAwareModel()
        shape = model.nonctrl_shape(
            nand2_ext, 0, 1, 0.5 * NS, 0.5 * NS, nand2_ext.ref_load
        )
        assert shape.p0 > shape.tail_p
        assert shape.p0 > shape.tail_q
        assert shape.s_pos > 0 and shape.s_neg > 0

    def test_sdf_underestimates_peak(self, nand2_ext):
        """The effect the extension exists to capture."""
        cell = GateCell("nand", 2, TECH)
        sim = simulate_gate(cell, [
            RampStimulus.transition(True, ARRIVAL, 0.5 * NS, TECH.vdd),
            RampStimulus.transition(True, ARRIVAL, 0.5 * NS, TECH.vdd),
        ])
        measured = sim.delay_from_latest()
        events = [rise(0, ARRIVAL), rise(1, ARRIVAL)]
        ext, _ = NonCtrlAwareModel().noncontrolling_response(
            nand2_ext, events, nand2_ext.ref_load
        )
        sdf, _ = VShapeModel().noncontrolling_response(
            nand2_ext, events, nand2_ext.ref_load
        )
        assert sdf < measured * 0.9  # SDF misses the slow-down
        assert abs(ext - measured) < abs(sdf - measured)

    @pytest.mark.parametrize("skew_ns", [-0.3, -0.1, 0.0, 0.1, 0.3])
    def test_tracks_simulator_over_skew(self, nand2_ext, skew_ns):
        skew = skew_ns * NS
        cell = GateCell("nand", 2, TECH)
        sim = simulate_gate(cell, [
            RampStimulus.transition(True, ARRIVAL, 0.5 * NS, TECH.vdd),
            RampStimulus.transition(True, ARRIVAL + skew, 0.5 * NS, TECH.vdd),
        ])
        measured = sim.delay_from_latest()
        events = [rise(0, ARRIVAL), rise(1, ARRIVAL + skew)]
        ext, _ = NonCtrlAwareModel().noncontrolling_response(
            nand2_ext, events, nand2_ext.ref_load
        )
        # Conservative (never below measured by more than the fit noise)
        # and tight (within ~35 ps).
        assert ext > measured - 0.012 * NS
        assert abs(ext - measured) < 0.035 * NS

    def test_large_skew_recovers_pin_to_pin(self, nand2_ext):
        events = [rise(0, ARRIVAL), rise(1, ARRIVAL + 2 * NS)]
        ext, _ = NonCtrlAwareModel().noncontrolling_response(
            nand2_ext, events, nand2_ext.ref_load
        )
        sdf, _ = VShapeModel().noncontrolling_response(
            nand2_ext, events, nand2_ext.ref_load
        )
        assert ext == pytest.approx(sdf, rel=0.02)


class TestStaIntegration:
    def test_extended_model_never_reduces_max_delay(self, library, c17):
        from repro.sta import TimingAnalyzer

        ext = TimingAnalyzer(c17, library, NonCtrlAwareModel()).analyze()
        base = TimingAnalyzer(c17, library, VShapeModel()).analyze()
        assert (
            ext.output_max_arrival() >= base.output_max_arrival() - 1e-15
        )
        for line in c17.lines:
            for rising in (True, False):
                w_ext = ext.line(line).window(rising)
                w_base = base.line(line).window(rising)
                if w_ext.is_active and w_base.is_active:
                    assert w_ext.a_l >= w_base.a_l - 1e-15

    def test_extended_sta_contains_extended_simulation(self, library, c17):
        import random

        from repro.sta import PiStimulus, TimingAnalyzer, TimingSimulator

        if library.cell("NAND2").nonctrl is None:
            pytest.skip("library lacks nonctrl extension data")
        model = NonCtrlAwareModel()
        sta = TimingAnalyzer(c17, library, model).analyze()
        sim = TimingSimulator(c17, library, model)
        rng = random.Random(17)
        for _ in range(100):
            stimuli = {
                pi: PiStimulus(rng.randint(0, 1), rng.randint(0, 1))
                for pi in c17.inputs
            }
            result = sim.run(stimuli)
            for line in c17.lines:
                event = result.events[line]
                if event is None:
                    continue
                window = sta.line(line).window(event.rising)
                assert window.contains_event(
                    event.arrival, event.trans, tol=1e-12
                ), (line, event, window)
