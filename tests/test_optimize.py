"""Tests of the timing-driven gate-sizing optimizer."""

import pytest

from repro.circuit import Circuit, load_packaged_bench
from repro.models import VShapeModel
from repro.sta import PerfConfig, StaConfig, TimingAnalyzer
from repro.sta.optimize import (
    DEFAULT_SIZES,
    SizingConfig,
    optimize_sizing,
)


def _fresh_worst_arrival(circuit, library, engine="level"):
    rebuilt = Circuit.from_dict(circuit.to_dict())
    analyzer = TimingAnalyzer(
        rebuilt, library, VShapeModel(), StaConfig(),
        perf=PerfConfig(engine=engine),
    )
    return analyzer.analyze().output_max_arrival()


class TestSizingConfig:
    def test_rejects_unknown_cost(self):
        with pytest.raises(ValueError):
            SizingConfig(cost="latency")

    def test_defaults_are_sane(self):
        config = SizingConfig()
        assert config.sizes == DEFAULT_SIZES
        assert config.cost == "wns"


class TestOptimizeSizing:
    def test_improves_wns_on_c432s(self, library):
        circuit = load_packaged_bench("c432s")
        config = SizingConfig(max_passes=3, gates_per_pass=4)
        result = optimize_sizing(circuit, library, config=config)
        assert result.commits >= 1
        assert result.improved
        assert result.final_wns > result.initial_wns
        assert result.resizes  # the committed edits are reported
        for line, (old, new) in result.resizes.items():
            assert circuit.gates[line].size == new
            assert old != new

    def test_final_cost_matches_fresh_analysis(self, library):
        # The optimizer's claimed final WNS comes from incremental trial
        # columns; it must be bitwise-equal to a fresh full analysis of
        # the mutated circuit.
        circuit = load_packaged_bench("c432s")
        config = SizingConfig(max_passes=2, gates_per_pass=4)
        result = optimize_sizing(circuit, library, config=config)
        worst = _fresh_worst_arrival(circuit, library)
        assert result.required - result.final_wns == worst

    def test_deterministic_under_seed(self, library):
        results = []
        for _ in range(2):
            circuit = load_packaged_bench("c17")
            config = SizingConfig(
                max_passes=2, gates_per_pass=3, anneal_steps=4, seed=7
            )
            results.append(optimize_sizing(circuit, library, config=config))
        a, b = results
        assert a.resizes == b.resizes
        assert a.final_cost == b.final_cost
        assert a.trials == b.trials

    def test_tns_mode_does_not_regress(self, library):
        circuit = load_packaged_bench("c17")
        # A clock at 60% of the unoptimized delay leaves real violations
        # for the TNS objective to chew on.
        clock = 0.6 * _fresh_worst_arrival(circuit, library)
        config = SizingConfig(
            max_passes=2, gates_per_pass=3, clock=clock, cost="tns"
        )
        result = optimize_sizing(circuit, library, config=config)
        assert result.cost_mode == "tns"
        assert result.final_cost <= result.initial_cost

    def test_gate_engine_also_supported(self, library):
        circuit = load_packaged_bench("c17")
        config = SizingConfig(max_passes=1, gates_per_pass=2)
        result = optimize_sizing(
            circuit, library, config=config,
            perf=PerfConfig(engine="gate"),
        )
        assert result.final_wns >= result.initial_wns


class TestOptimizeCli:
    def test_smoke_and_exit_code(self, capsys):
        from repro.cli import main

        rc = main([
            "optimize", "c17", "--passes", "1", "--gates-per-pass", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "WNS" in out

    def test_json_output(self, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "sizing.json"
        rc = main([
            "optimize", "c17", "--passes", "1", "--gates-per-pass", "2",
            "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["circuit"] == "c17"
        assert payload["final_wns_ns"] >= payload["initial_wns_ns"]
