"""Tests for the timing daemon (``repro.server``).

Covers the protocol layer (normalization, idempotency keys, the error
table), the async application (structured error paths, timeouts,
backpressure, shutdown-with-inflight, dedup/memo, what-if coalescing
and fallback isolation), bitwise parity with one-shot engine runs, and
a real socket round-trip through :class:`ServerThread` +
:class:`ServerClient`.
"""

import asyncio
import http.client
import json

import pytest

from repro.characterize import CellLibrary
from repro.circuit import load_packaged_bench
from repro.obs import use_registry
from repro.server import (
    Request,
    ServerApp,
    ServerClient,
    ServerConfig,
    ServerError,
    ServerThread,
    validate_request,
)
from repro.server.app import _Pending
from repro.server.client import ServerRequestError
from repro.server.session import windows_payload
from repro.sta.analysis import PerfConfig, TimingAnalyzer
from repro.stat import run_mc
from repro.stat.runner import MC_MODELS
from repro.stat.variation import VariationModel

CIRCUIT = load_packaged_bench("c17")
LIBRARY = CellLibrary.load_default()
GATE = sorted(CIRCUIT.gates)[0]

#: The scalar reference configuration the parity tests compare against.
SCALAR = PerfConfig(batched_kernels=False, memo_enabled=False)


def query(method, params=None, circuit="c17", **extra):
    payload = {"circuit": circuit, "method": method,
               "params": params or {}}
    payload.update(extra)
    return payload


def run_app(coro_factory, config=None, circuits=None):
    """Run ``coro_factory(app)`` against a started in-process app."""
    async def main():
        app = ServerApp(
            circuits or {"c17": CIRCUIT},
            config or ServerConfig(workers=0),
            library=LIBRARY,
        )
        await app.startup()
        try:
            return await coro_factory(app)
        finally:
            await app.aclose()

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_defaults_normalize_into_the_key(self):
        # A request spelling out the defaults and one omitting them are
        # the same idempotent request.
        explicit = validate_request(query(
            "slack", {"model": "vshape", "worst": 10, "clock_ns": None}
        ))
        implicit = validate_request(query("slack"))
        assert isinstance(explicit, Request)
        assert explicit.params == implicit.params
        assert explicit.key == implicit.key

    def test_params_change_the_key(self):
        a = validate_request(query("slack", {"worst": 3}))
        b = validate_request(query("slack", {"worst": 4}))
        assert a.key != b.key

    VALIDATION_TABLE = [
        (["not", "a", "dict"], "bad_request"),
        ({"method": "windows", "params": {}}, "bad_request"),
        (query("windows", junk=1), "bad_request"),
        (query("explode"), "unknown_method"),
        (query("windows", {"lines": "G1"}), "bad_request"),
        (query("windows", {"model": "nope"}), "bad_request"),
        (query("slack", {"worst": 0}), "bad_request"),
        (query("path", {"kind": "sideways"}), "bad_request"),
        (query("mc", {"samples": 0}), "bad_request"),
        (query("mc", {"quantiles": [1.5]}), "bad_request"),
        (query("mc", {"sigma_corr": -0.1}), "bad_request"),
        (query("whatif", {"edits": []}), "bad_request"),
        (query("whatif", {"edits": [{"op": "melt", "line": "G1",
                                     "value": 1.0}]}), "bad_request"),
        (query("whatif", {"edits": [{"op": "resize", "line": "G1",
                                     "value": -2.0}]}), "bad_request"),
        (query("whatif", {"edits": [
            {"op": "resize", "line": "G1", "value": 1.0}] * 33,
        }), "oversized_batch"),
        (query("corners"), "bad_request"),
        (query("corners", {"corners": []}), "bad_request"),
        (query("corners", {"corners": [42]}), "bad_request"),
        (query("corners", {"corners": [""]}), "bad_request"),
        (query("corners", {"corners": [{"vdd": 3.0}]}), "bad_request"),
        (query("corners", {"corners": [
            {"name": "x", "voltage": 3.0}]}), "bad_request"),
        (query("corners", {"corners": [
            {"name": "x", "vdd": "high"}]}), "bad_request"),
        (query("corners", {"corners": ["typ"] * 33}), "oversized_batch"),
        (query("corners", {"corners": ["typ"], "lines": "G1"}),
         "bad_request"),
        (query("windows", timeout_s=0.0), "bad_request"),
    ]

    def test_corner_specs_normalize_into_the_key(self):
        # Spec strings pass through untouched; corner objects keep only
        # the fields given, coerced to float — so a request spelling a
        # field as int and one as float share the idempotency key.
        as_int = validate_request(query("corners", {
            "corners": ["slow", {"name": "hot", "temp_c": 125}],
        }))
        as_float = validate_request(query("corners", {
            "corners": ["slow", {"name": "hot", "temp_c": 125.0}],
        }))
        assert as_int.params["corners"] == [
            "slow", {"name": "hot", "temp_c": 125.0}
        ]
        assert as_int.key == as_float.key
        # Corner order is part of the request's identity.
        swapped = validate_request(query("corners", {
            "corners": [{"name": "hot", "temp_c": 125.0}, "slow"],
        }))
        assert swapped.key != as_int.key

    @pytest.mark.parametrize("payload,code", VALIDATION_TABLE)
    def test_validation_error_table(self, payload, code):
        with pytest.raises(ServerError) as err:
            validate_request(payload)
        assert err.value.code == code
        body = err.value.body()
        assert body["ok"] is False
        assert body["error"]["code"] == code
        assert "traceback" not in json.dumps(body).lower()


# ----------------------------------------------------------------------
# Application error paths
# ----------------------------------------------------------------------
class TestErrorPaths:
    SERVED_TABLE = [
        ("loads of junk", 400, "bad_request"),
        (query("windows", circuit="c9999"), 404, "unknown_circuit"),
        (query("explode"), 404, "unknown_method"),
        (query("whatif", {"edits": [
            {"op": "resize", "line": "G1", "value": 1.0}] * 33,
        }), 413, "oversized_batch"),
        # An unknown gate line passes validation (the protocol layer is
        # circuit-blind) and must come back structured from the session.
        (query("whatif", {"edits": [
            {"op": "resize", "line": "no_such_line", "value": 2.0},
        ]}), 400, "bad_request"),
        # Corner specs resolve session-side: a malformed inline spec,
        # a duplicate name, and an unknown line all pass the (engine-
        # free) protocol layer but must come back structured.
        (query("corners", {"corners": ["typ:bogus=1"]}),
         400, "bad_request"),
        (query("corners", {"corners": ["typ", "typ"]}),
         400, "bad_request"),
        (query("corners", {"corners": ["typ"], "lines": ["NOPE"]}),
         400, "bad_request"),
    ]

    @pytest.mark.parametrize("payload,status,code", SERVED_TABLE)
    def test_served_error_table(self, payload, status, code):
        got_status, body = run_app(
            lambda app: app.handle_request_payload(payload)
        )
        assert got_status == status
        assert body["ok"] is False
        assert body["error"]["code"] == code
        assert "traceback" not in json.dumps(body).lower()

    def test_timeout_expiry(self):
        # A microsecond budget cannot cover a real MC run; the waiter
        # gets a structured 504 while the computation (shielded) is
        # allowed to finish in the background.
        payload = query(
            "mc", {"samples": 64, "block": 8}, timeout_s=1e-6
        )
        status, body = run_app(
            lambda app: app.handle_request_payload(payload)
        )
        assert status == 504
        assert body["error"]["code"] == "timeout"

    def test_overloaded_when_queue_is_full(self):
        async def scenario(app):
            # Park the drainer so the queue genuinely fills.
            q = app._queue_for("c17")
            app._drainers["c17"].cancel()
            stuck = validate_request(query("windows"))
            q.put_nowait(_Pending(
                stuck, asyncio.get_running_loop().create_future()
            ))
            return await app.handle_request_payload(query("slack"))

        status, body = run_app(
            scenario, config=ServerConfig(workers=0, queue_limit=1)
        )
        assert status == 503
        assert body["error"]["code"] == "overloaded"

    def test_shutdown_fails_queued_inflight_work(self):
        async def scenario(app):
            q = app._queue_for("c17")
            app._drainers["c17"].cancel()
            future = asyncio.get_running_loop().create_future()
            q.put_nowait(_Pending(validate_request(query("path")), future))
            app.request_shutdown()
            with pytest.raises(ServerError) as err:
                await future
            assert err.value.code == "shutting_down"
            # And new work is turned away at the door.
            return await app.handle_request_payload(query("windows"))

        status, body = run_app(scenario)
        assert status == 503
        assert body["error"]["code"] == "shutting_down"

    def test_batch_endpoint_cap_and_mixed_outcomes(self):
        oversized = {"requests": [query("windows")] * 3}
        status, body = run_app(
            lambda app: app.handle_batch_payload(oversized),
            config=ServerConfig(workers=0, max_batch=2),
        )
        assert status == 413
        assert body["error"]["code"] == "oversized_batch"

        mixed = {"requests": [query("windows"), query("explode")]}
        status, body = run_app(
            lambda app: app.handle_batch_payload(mixed)
        )
        assert status == 200
        assert body["ok"] is False
        oks = [item["ok"] for item in body["responses"]]
        assert oks == [True, False]


# ----------------------------------------------------------------------
# Memo, dedup, coalescing
# ----------------------------------------------------------------------
class TestBatching:
    def test_memo_replays_identical_requests(self):
        async def scenario(app):
            first = await app.handle_request_payload(query("slack"))
            second = await app.handle_request_payload(query("slack"))
            return first, second

        (s1, b1), (s2, b2) = run_app(scenario)
        assert s1 == s2 == 200
        assert b1["cached"] is False
        assert b2["cached"] is True
        assert b1["result"] == b2["result"]
        assert b1["key"] == b2["key"]

    def test_concurrent_duplicates_collapse_to_one_computation(self):
        async def scenario(app):
            return await asyncio.gather(*[
                app.handle_request_payload(query("windows"))
                for _ in range(4)
            ])

        with use_registry() as registry:
            answered = run_app(scenario)
            counters = registry.snapshot()["counters"]
        results = [body["result"] for _, body in answered]
        assert all(status == 200 for status, _ in answered)
        assert all(result == results[0] for result in results)
        assert counters.get("server.batch.deduped", 0) >= 3

    def test_concurrent_whatifs_ride_one_trial_batch(self):
        def whatif(value):
            return query("whatif", {"edits": [
                {"op": "resize", "line": GATE, "value": value},
            ]})

        async def scenario(app):
            return await asyncio.gather(
                app.handle_request_payload(whatif(0.5)),
                app.handle_request_payload(whatif(2.0)),
            )

        with use_registry() as registry:
            answered = run_app(scenario)
            counters = registry.snapshot()["counters"]
        assert all(status == 200 for status, _ in answered)
        assert counters.get("server.whatif.coalesced_batches", 0) >= 1

    def test_poisoned_whatif_fails_alone(self):
        # Swapping a NAND to a fan-in-incompatible cell poisons the
        # shared trial batch; the fallback re-run must keep the failure
        # with its owner while the resize still succeeds.
        good = query("whatif", {"edits": [
            {"op": "resize", "line": GATE, "value": 2.0},
        ]})
        bad = query("whatif", {"edits": [
            {"op": "swap", "line": GATE, "value": "no_such_cell"},
        ]})

        async def scenario(app):
            return await asyncio.gather(
                app.handle_request_payload(good),
                app.handle_request_payload(bad),
            )

        (s_good, b_good), (s_bad, b_bad) = run_app(scenario)
        assert s_good == 200 and b_good["ok"] is True
        assert s_bad in (400, 500) and b_bad["ok"] is False
        assert "traceback" not in json.dumps(b_bad).lower()


# ----------------------------------------------------------------------
# Bitwise parity with one-shot engine runs
# ----------------------------------------------------------------------
class TestParity:
    def test_windows_matches_fresh_scalar_analysis(self):
        status, body = run_app(
            lambda app: app.handle_request_payload(
                query("windows", {"lines": list(CIRCUIT.outputs)})
            )
        )
        assert status == 200
        reference = windows_payload(
            TimingAnalyzer(
                CIRCUIT, LIBRARY, MC_MODELS["vshape"](), perf=SCALAR
            ).analyze(),
            list(CIRCUIT.outputs),
        )
        assert body["result"] == reference

    def test_mc_matches_one_shot_run_mc(self):
        params = {
            "samples": 24, "seed": 7, "block": 5, "sigma_corr": 0.04,
            "sigma_ind": 0.06, "quantiles": [0.5, 0.95],
        }
        status, body = run_app(
            lambda app: app.handle_request_payload(query("mc", params))
        )
        assert status == 200
        reference = run_mc(
            CIRCUIT, LIBRARY, model="vshape",
            variation=VariationModel(sigma_corr=0.04, sigma_ind=0.06),
            samples=24, seed=7, jobs=1, block=5,
        ).summary((0.5, 0.95), None)
        assert json.dumps(body["result"], sort_keys=True) \
            == json.dumps(reference, sort_keys=True)

    def test_corners_matches_fresh_corner_analyzer(self):
        from repro.pvt import CornerAnalyzer, parse_corner, scaled_library
        from repro.server.session import corners_payload

        specs = ["typ", "slow", "fast:process=0.9:vdd=3.6:late=1.05"]
        status, body = run_app(
            lambda app: app.handle_request_payload(
                query("corners", {"corners": specs})
            )
        )
        assert status == 200
        corners = [parse_corner(spec) for spec in specs]
        reference = corners_payload(
            corners,
            CornerAnalyzer(
                CIRCUIT, corners,
                [scaled_library(LIBRARY, corner) for corner in corners],
                model=MC_MODELS["vshape"](), engine="level",
            ).analyze(),
            list(CIRCUIT.outputs),
        )
        assert json.dumps(body["result"], sort_keys=True) \
            == json.dumps(reference, sort_keys=True)

    def test_corners_reuses_warm_engine_across_queries(self):
        # Same corner set, different lines: distinct request keys (no
        # app-level memo hit), but one multi-corner engine build.
        from repro.server.session import CircuitSession

        lines = sorted(CIRCUIT.outputs)
        with use_registry() as registry:
            session = CircuitSession(CIRCUIT, LIBRARY)
            for subset in (lines, lines[:1]):
                params = validate_request(query("corners", {
                    "corners": ["typ", "slow"], "lines": subset,
                })).params
                session.dispatch("corners", params)
            built = registry.counter("server.session.corner_engines_built")
            assert built.value == 1
            # A different corner set is a genuinely new engine.
            session.dispatch("corners", validate_request(
                query("corners", {"corners": ["typ", "fast"]})
            ).params)
            assert built.value == 2

    def test_whatif_matches_per_edit_fresh_analysis(self):
        edits = [
            {"op": "resize", "line": GATE, "value": 0.5},
            {"op": "resize", "line": GATE, "value": 4.0},
        ]
        status, body = run_app(
            lambda app: app.handle_request_payload(
                query("whatif", {"edits": edits, "clock_ns": 2.0})
            )
        )
        assert status == 200
        model = MC_MODELS["vshape"]()
        base = TimingAnalyzer(
            CIRCUIT, LIBRARY, model, perf=SCALAR
        ).analyze().output_max_arrival()
        assert body["result"]["base_max_arrival_s"] == base
        for edit, row in zip(edits, body["result"]["trials"]):
            variant = load_packaged_bench("c17")
            variant.resize_gate(edit["line"], edit["value"])
            arrival = TimingAnalyzer(
                variant, LIBRARY, MC_MODELS["vshape"](), perf=SCALAR
            ).analyze().output_max_arrival()
            assert row["max_arrival_s"] == arrival
            assert row["delta_s"] == arrival - base
            assert row["slack_s"] == 2.0e-9 - arrival


# ----------------------------------------------------------------------
# Socket round-trip
# ----------------------------------------------------------------------
class TestServerThread:
    def test_full_round_trip_and_clean_shutdown(self):
        # The CLI installs a metrics registry before serving; do the
        # same here so the /metrics scrape has content.
        with use_registry(), ServerThread(
            {"c17": CIRCUIT}, ServerConfig(port=0, workers=0),
            library=LIBRARY,
        ) as handle:
            with ServerClient("127.0.0.1", handle.port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["circuits"] == ["c17"]

                result = client.result(
                    "c17", "windows", {"lines": list(CIRCUIT.outputs)}
                )
                assert set(result["lines"]) == set(CIRCUIT.outputs)

                with pytest.raises(ServerRequestError) as err:
                    client.result("c9999", "windows")
                assert err.value.code == "unknown_circuit"

                metrics = client.metrics()
                assert "repro_server_windows_latency_s" in metrics
                assert "repro_server_requests_windows_total" in metrics

                # Malformed JSON over the raw socket: structured 400.
                conn = http.client.HTTPConnection(
                    "127.0.0.1", handle.port, timeout=10
                )
                conn.request(
                    "POST", "/v1/query", body=b"{nope",
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                wire = response.read().decode("utf-8")
                conn.close()
                assert response.status == 400
                assert json.loads(wire)["error"]["code"] == "bad_request"
                assert "traceback" not in wire.lower()

                client.shutdown()
        assert handle.stop() == []
        assert handle.error is None
