"""Tests for the nine-valued two-frame logic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itr.values import NINE_VALUES, TwoFrame, XX
from repro.sta.windows import DEFINITE, IMPOSSIBLE, POTENTIAL

two_frames = st.sampled_from(sorted(NINE_VALUES)).map(NINE_VALUES.get)


class TestConstruction:
    def test_nine_values_enumerated(self):
        assert len(NINE_VALUES) == 9
        assert str(NINE_VALUES["0x"]) == "0x"

    def test_parse_round_trip(self):
        for name, value in NINE_VALUES.items():
            assert TwoFrame.parse(name) == value
            assert str(value) == name

    def test_parse_rejects_garbage(self):
        for bad in ("012", "2x", "", "ab"):
            with pytest.raises(ValueError):
                TwoFrame.parse(bad)

    def test_bad_frame_value_rejected(self):
        with pytest.raises(ValueError):
            TwoFrame(2, 0)


class TestStates:
    def test_paper_table_for_rising(self):
        """01 -> definite; 0x, x1, xx -> potential; others -> impossible."""
        expected = {
            "01": DEFINITE,
            "0x": POTENTIAL, "x1": POTENTIAL, "xx": POTENTIAL,
            "00": IMPOSSIBLE, "10": IMPOSSIBLE, "11": IMPOSSIBLE,
            "1x": IMPOSSIBLE, "x0": IMPOSSIBLE,
        }
        for name, state in expected.items():
            assert NINE_VALUES[name].state(True) == state, name

    def test_falling_states_symmetric(self):
        expected = {
            "10": DEFINITE,
            "1x": POTENTIAL, "x0": POTENTIAL, "xx": POTENTIAL,
            "00": IMPOSSIBLE, "01": IMPOSSIBLE, "11": IMPOSSIBLE,
            "0x": IMPOSSIBLE, "x1": IMPOSSIBLE,
        }
        for name, state in expected.items():
            assert NINE_VALUES[name].state(False) == state, name

    @given(value=two_frames)
    @settings(max_examples=20, deadline=None)
    def test_rise_and_fall_never_both_definite(self, value):
        assert not (
            value.state(True) == DEFINITE and value.state(False) == DEFINITE
        )

    def test_has_potential_transition(self):
        assert NINE_VALUES["xx"].has_potential_transition(True)
        assert not NINE_VALUES["11"].has_potential_transition(True)


class TestIntersect:
    def test_x_absorbs(self):
        assert XX.intersect(NINE_VALUES["01"]) == NINE_VALUES["01"]
        assert NINE_VALUES["0x"].intersect(NINE_VALUES["x1"]) == NINE_VALUES["01"]

    def test_conflict_returns_none(self):
        assert NINE_VALUES["01"].intersect(NINE_VALUES["10"]) is None
        assert NINE_VALUES["0x"].intersect(NINE_VALUES["1x"]) is None

    def test_idempotent(self):
        for value in NINE_VALUES.values():
            assert value.intersect(value) == value

    @given(a=two_frames, b=two_frames)
    @settings(max_examples=81, deadline=None)
    def test_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(a=two_frames, b=two_frames)
    @settings(max_examples=81, deadline=None)
    def test_result_refines_both(self, a, b):
        result = a.intersect(b)
        if result is not None:
            assert result.refines(a)
            assert result.refines(b)


class TestRefines:
    def test_specific_refines_general(self):
        assert NINE_VALUES["01"].refines(NINE_VALUES["0x"])
        assert NINE_VALUES["01"].refines(XX)
        assert not NINE_VALUES["0x"].refines(NINE_VALUES["01"])

    def test_fully_specified(self):
        assert NINE_VALUES["10"].is_fully_specified
        assert not NINE_VALUES["1x"].is_fully_specified
