"""Tests for the transient solver on small hand-checkable circuits."""

import numpy as np
import pytest

from repro.spice.gates import GateCell, OUT_NODE, input_node
from repro.spice.solver import TransientSolver
from repro.spice.waveform import RampStimulus
from repro.tech import GENERIC_05UM as TECH

VDD = TECH.vdd


def inverter_circuit(stim, load=5e-15):
    cell = GateCell("inv", 1, TECH)
    circuit = cell.build(load_cap=load)
    circuit.set_source(input_node(0), stim)
    return circuit


class TestSettle:
    def test_inverter_dc_high(self):
        circuit = inverter_circuit(RampStimulus.steady(0, VDD))
        solver = TransientSolver(circuit)
        x = solver.settle(0.0)
        out = x[solver.free.index(OUT_NODE)]
        assert out == pytest.approx(VDD, abs=0.05)

    def test_inverter_dc_low(self):
        circuit = inverter_circuit(RampStimulus.steady(1, VDD))
        solver = TransientSolver(circuit)
        x = solver.settle(0.0)
        out = x[solver.free.index(OUT_NODE)]
        assert out == pytest.approx(0.0, abs=0.05)

    def test_nand_internal_node_discharged_when_path_on(self):
        cell = GateCell("nand", 2, TECH)
        circuit = cell.build()
        circuit.set_source(input_node(0), RampStimulus.steady(1, VDD))
        circuit.set_source(input_node(1), RampStimulus.steady(1, VDD))
        solver = TransientSolver(circuit)
        x = solver.settle(0.0)
        internal = x[solver.free.index("xm1")]
        assert internal == pytest.approx(0.0, abs=0.05)


class TestTransient:
    def test_inverter_switches(self):
        stim = RampStimulus.transition(True, 1e-9, 0.3e-9, VDD)
        circuit = inverter_circuit(stim)
        solver = TransientSolver(circuit)
        res = solver.run(0.0, 4e-9, 2e-12)
        out = res[OUT_NODE]
        assert out.values[0] == pytest.approx(VDD, abs=0.05)
        assert out.values[-1] == pytest.approx(0.0, abs=0.05)
        assert out.final_transition_rising() is False

    def test_output_delay_positive_for_fast_input(self):
        stim = RampStimulus.transition(True, 1e-9, 0.2e-9, VDD)
        circuit = inverter_circuit(stim)
        res = TransientSolver(circuit).run(0.0, 4e-9, 2e-12)
        assert res[OUT_NODE].arrival_time() > 1e-9

    def test_larger_load_slows_output(self):
        stim = RampStimulus.transition(True, 1e-9, 0.3e-9, VDD)
        fast = TransientSolver(inverter_circuit(stim, load=2e-15)).run(
            0.0, 5e-9, 2e-12
        )
        slow = TransientSolver(inverter_circuit(stim, load=30e-15)).run(
            0.0, 5e-9, 2e-12
        )
        assert (
            slow[OUT_NODE].arrival_time() > fast[OUT_NODE].arrival_time()
        )
        assert (
            slow[OUT_NODE].transition_time()
            > fast[OUT_NODE].transition_time()
        )

    def test_driven_nodes_recorded_exactly(self):
        stim = RampStimulus.transition(True, 1e-9, 0.4e-9, VDD)
        circuit = inverter_circuit(stim)
        res = TransientSolver(circuit).run(0.0, 3e-9, 2e-12)
        inp = res[input_node(0)]
        assert inp.arrival_time() == pytest.approx(1e-9, rel=1e-3)
        assert inp.transition_time() == pytest.approx(0.4e-9, rel=1e-2)

    def test_invalid_run_arguments(self):
        circuit = inverter_circuit(RampStimulus.steady(0, VDD))
        solver = TransientSolver(circuit)
        with pytest.raises(ValueError):
            solver.run(1e-9, 0.0, 1e-12)
        with pytest.raises(ValueError):
            solver.run(0.0, 1e-9, 0.0)

    def test_coarsening_reduces_sample_count(self):
        stim = RampStimulus.transition(True, 1e-9, 0.3e-9, VDD)
        dense = TransientSolver(inverter_circuit(stim)).run(0.0, 6e-9, 2e-12)
        sparse = TransientSolver(inverter_circuit(stim)).run(
            0.0, 6e-9, 2e-12, coarsen_after=2e-9
        )
        assert len(sparse[OUT_NODE].times) < len(dense[OUT_NODE].times)

    def test_energy_conservation_sanity(self):
        """Output never exceeds the rails by more than solver slack."""
        stim = RampStimulus.transition(False, 1e-9, 0.5e-9, VDD)
        circuit = inverter_circuit(stim)
        res = TransientSolver(circuit).run(0.0, 5e-9, 2e-12)
        out = res[OUT_NODE].values
        assert np.all(out > -0.2)
        assert np.all(out < VDD + 0.2)


class TestChargeSharing:
    def test_nand_internal_node_charge_redistribution(self):
        """A floating internal stack node moves when the gate above opens.

        This is the mechanism behind the paper's input-position effect, so
        the simulator must capture it.
        """
        cell = GateCell("nand", 2, TECH)
        circuit = cell.build()
        # X (position 0) opens while Y (position 1) stays off: the internal
        # node between them gets pulled toward the output level.
        circuit.set_source(
            input_node(0), RampStimulus.transition(True, 1e-9, 0.3e-9, VDD)
        )
        circuit.set_source(input_node(1), RampStimulus.steady(0, VDD))
        solver = TransientSolver(circuit)
        res = solver.run(0.0, 6e-9, 2e-12, record=[OUT_NODE, "xm1"])
        internal = res["xm1"]
        # Output must stay high (Y holds the pull-up on, pull-down is cut),
        # while the internal node charges up through the open X transistor.
        assert res[OUT_NODE].values[-1] > 0.9 * VDD
        assert internal.values[-1] > internal.values[0] + 0.5
