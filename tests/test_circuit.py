"""Tests for the gate-level netlist, bench I/O and the generator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    BenchParseError,
    C17_BENCH,
    Circuit,
    CircuitError,
    Gate,
    GeneratorConfig,
    ISCAS_PROFILES,
    generate_circuit,
    generate_iscas_like,
    load_packaged_bench,
    parse_bench,
    write_bench,
)


def c17():
    return parse_bench(C17_BENCH, name="c17")


class TestGate:
    def test_cell_name(self):
        assert Gate("z", "nand", ["a", "b", "c"]).cell_name() == "NAND3"
        assert Gate("z", "inv", ["a"]).cell_name() == "INV"

    def test_bad_kind(self):
        with pytest.raises(CircuitError):
            Gate("z", "latch", ["a"])

    def test_bad_arity(self):
        with pytest.raises(CircuitError):
            Gate("z", "inv", ["a", "b"])
        with pytest.raises(CircuitError):
            Gate("z", "nand", ["a"])


class TestCircuitStructure:
    def test_c17_parses(self):
        circuit = c17()
        assert circuit.stats() == {
            "inputs": 5, "outputs": 2, "gates": 6, "depth": 3,
        }

    def test_duplicate_driver_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(
                "bad", ["a", "b"], ["z"],
                [Gate("z", "nand", ["a", "b"]), Gate("z", "inv", ["a"])],
            )

    def test_input_driven_by_gate_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", ["a", "b"], ["a"], [Gate("a", "inv", ["b"])])

    def test_undriven_line_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", ["a"], ["z"], [Gate("z", "inv", ["ghost"])])

    def test_undriven_output_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("bad", ["a"], ["ghost"], [Gate("z", "inv", ["a"])])

    def test_cycle_detected(self):
        with pytest.raises(CircuitError, match="cycle"):
            Circuit(
                "bad", ["a"], ["x"],
                [Gate("x", "nand", ["a", "y"]), Gate("y", "inv", ["x"])],
            ).topological_order()

    def test_topological_order_respects_dependencies(self):
        circuit = c17()
        order = circuit.topological_order()
        position = {line: i for i, line in enumerate(order)}
        for gate in circuit.gates.values():
            for inp in gate.inputs:
                if inp in position:
                    assert position[inp] < position[gate.output]

    def test_fanouts(self):
        circuit = c17()
        fanout_names = sorted(g.output for g in circuit.fanouts("G11"))
        assert fanout_names == ["G16", "G19"]
        assert circuit.fanouts("G22") == []

    def test_is_primary_input(self):
        circuit = c17()
        assert circuit.is_primary_input("G1")
        assert not circuit.is_primary_input("G22")

    def test_levelize(self):
        levels = c17().levelize()
        assert levels["G1"] == 0
        assert levels["G10"] == 1
        assert levels["G16"] == 2
        assert levels["G22"] == 3


class TestFunctionalSimulation:
    def test_c17_exhaustive_against_reference(self):
        circuit = c17()

        def reference(g1, g2, g3, g6, g7):
            g10 = 1 - (g1 & g3)
            g11 = 1 - (g3 & g6)
            g16 = 1 - (g2 & g11)
            g19 = 1 - (g11 & g7)
            g22 = 1 - (g10 & g16)
            g23 = 1 - (g16 & g19)
            return g22, g23

        for vals in itertools.product((0, 1), repeat=5):
            assignment = dict(zip(["G1", "G2", "G3", "G6", "G7"], vals))
            result = circuit.evaluate(assignment)
            assert (result["G22"], result["G23"]) == reference(*vals)

    def test_x_propagation(self):
        circuit = c17()
        result = circuit.evaluate(
            {"G1": None, "G2": None, "G3": 0, "G6": None, "G7": None}
        )
        # G3=0 controls G10 and G11: G10=G11=1; everything else depends on X.
        assert result["G10"] == 1
        assert result["G11"] == 1
        assert result["G16"] is None

    def test_missing_input_rejected(self):
        with pytest.raises(CircuitError):
            c17().evaluate({"G1": 0})


class TestBenchIO:
    def test_round_trip(self):
        original = c17()
        text = write_bench(original)
        again = parse_bench(text, name="c17")
        assert again.inputs == original.inputs
        assert again.outputs == original.outputs
        assert set(again.gates) == set(original.gates)
        for vals in itertools.product((0, 1), repeat=5):
            assignment = dict(zip(original.inputs, vals))
            assert original.evaluate(assignment) == again.evaluate(assignment)

    def test_comments_and_blank_lines_ignored(self):
        text = "# hello\n\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b) # tail\n"
        circuit = parse_bench(text)
        assert circuit.evaluate({"a": 1, "b": 1})["z"] == 1

    def test_not_and_buff_keywords(self):
        text = "INPUT(a)\nOUTPUT(z)\ny = NOT(a)\nz = BUFF(y)\n"
        circuit = parse_bench(text)
        assert circuit.evaluate({"a": 0})["z"] == 1

    def test_unknown_keyword_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = MAJ(a, a, a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nwat\n")

    def test_packaged_c17(self):
        circuit = load_packaged_bench("c17")
        assert circuit.stats()["gates"] == 6

    def test_packaged_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            load_packaged_bench("c9999")


class TestGenerator:
    def test_deterministic_per_seed(self):
        cfg = GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=50, seed=7)
        a = generate_circuit("t", cfg)
        b = generate_circuit("t", cfg)
        assert write_bench(a) == write_bench(b)

    def test_different_seed_differs(self):
        a = generate_circuit(
            "t", GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=50, seed=1)
        )
        b = generate_circuit(
            "t", GeneratorConfig(n_inputs=10, n_outputs=4, n_gates=50, seed=2)
        )
        assert write_bench(a) != write_bench(b)

    def test_profile_interface_sizes(self):
        circuit = generate_iscas_like("c880s")
        stats = circuit.stats()
        assert stats["inputs"] == ISCAS_PROFILES["c880s"]["inputs"]
        assert stats["outputs"] == ISCAS_PROFILES["c880s"]["outputs"]
        assert stats["gates"] == ISCAS_PROFILES["c880s"]["gates"]

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            generate_iscas_like("c9999")

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_inputs=1, n_outputs=1, n_gates=1)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_gates=st.integers(min_value=5, max_value=120),
        n_inputs=st.integers(min_value=3, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_circuits_are_valid_and_acyclic(
        self, seed, n_gates, n_inputs
    ):
        cfg = GeneratorConfig(
            n_inputs=n_inputs, n_outputs=2, n_gates=n_gates, seed=seed
        )
        circuit = generate_circuit("prop", cfg)
        order = circuit.topological_order()  # raises on cycles
        assert len(order) == n_gates
        # Functional simulation over a couple of random-ish vectors works.
        for pattern in (0, 1):
            assignment = {pi: pattern for pi in circuit.inputs}
            values = circuit.evaluate(assignment)
            assert all(v in (0, 1) for v in values.values())

    def test_fanin_respects_library_limits(self):
        circuit = generate_iscas_like("c1908s")
        limits = {"nand": 5, "nor": 5, "and": 4, "or": 4, "xor": 2,
                  "inv": 1, "buf": 1}
        for gate in circuit.gates.values():
            assert gate.n_inputs <= limits[gate.kind]
