"""Tests for the differential fuzzing subsystem (``repro.fuzz``)."""

import json

import numpy as np
import pytest

import repro.sta.kernels as kernels_mod
from repro.cli import main
from repro.fuzz import (
    FuzzCase,
    FuzzConfig,
    FuzzRunner,
    ORACLES,
    case_size,
    generate_case,
    load_artifact,
    prune_circuit_dict,
    replay_artifact,
    run_fuzz,
    run_oracle,
    select_oracles,
    shrink_case,
    write_artifact,
)
from repro.fuzz.case import (
    delete_gate_from_dict,
    faults_valid_for,
    window_from_list,
    window_to_list,
)
from repro.sta.windows import DirWindow

#: Coordinates of a case the planted kernel bug is known to fail on;
#: deterministic because cases derive entirely from (seed, oracle, index).
PLANTED_SEED, PLANTED_INDEX = 1234, 5

FAST_ORACLES = ("kernels", "memo", "itr")


def plant_kernel_bug(monkeypatch):
    """Swap the curvature conditions in ``quad_extremes_batch``.

    The mutant counts the interior stationary point toward the max for
    convex quadratics and toward the min for concave ones — exactly
    backwards — so wide-gate corner searches return wrong extremes.
    """

    def buggy(a2, a1, a0, lo, hi):
        with np.errstate(divide="ignore", invalid="ignore"):
            stat = -a1 / (2.0 * a2)
        v_lo = (a2 * lo + a1) * lo + a0
        v_hi = (a2 * hi + a1) * hi + a0
        v_st = (a2 * stat + a1) * stat + a0
        interior = (lo < stat) & (stat < hi)
        maxs = np.maximum(v_lo, v_hi)
        maxs = np.where(interior & (a2 > 0.0), np.maximum(maxs, v_st), maxs)
        mins = np.minimum(v_lo, v_hi)
        mins = np.where(interior & (a2 < 0.0), np.minimum(mins, v_st), mins)
        return mins, maxs

    monkeypatch.setattr(kernels_mod, "quad_extremes_batch", buggy)


class TestGenerators:
    def test_same_coordinates_same_case(self):
        for oracle in ORACLES:
            a = generate_case(oracle, seed=99, index=3)
            b = generate_case(oracle, seed=99, index=3)
            assert a.to_dict() == b.to_dict(), oracle

    def test_different_coordinates_differ(self):
        a = generate_case("kernels", seed=99, index=3)
        b = generate_case("kernels", seed=99, index=4)
        c = generate_case("kernels", seed=100, index=3)
        assert a.to_dict() != b.to_dict()
        assert a.to_dict() != c.to_dict()

    def test_cases_are_json_round_trippable(self):
        for oracle in ORACLES:
            case = generate_case(oracle, seed=5, index=0)
            wire = json.loads(json.dumps(case.to_dict()))
            assert FuzzCase.from_dict(wire).to_dict() == case.to_dict()

    def test_generated_circuits_build(self):
        for index in range(6):
            case = generate_case("kernels", seed=11, index=index)
            circuit = case.build_circuit()
            assert circuit.outputs
            assert circuit.topological_order()


class TestOracleRegistry:
    def test_expected_oracles_registered(self):
        assert set(ORACLES) >= {
            "kernels", "memo", "itr", "atpg-jobs", "char-jobs", "spice",
            "serve", "corners",
        }

    def test_select_all_and_unknown(self):
        assert [o.name for o in select_oracles()] == list(ORACLES)
        with pytest.raises(KeyError):
            select_oracles(["no-such-oracle"])

    def test_schedule_covers_every_registered_oracle(self):
        config = FuzzConfig(cases=len(ORACLES) * 2, seed=0)
        runner = FuzzRunner(config)
        scheduled = {oracle for oracle, _ in runner._schedule()}
        assert scheduled == set(ORACLES)

    def test_fast_oracles_pass_on_healthy_build(self):
        for oracle in FAST_ORACLES:
            for index in range(3):
                case = generate_case(oracle, seed=21, index=index)
                result = run_oracle(case)
                assert result.ok, f"{oracle}[{index}]: {result.detail}"


class TestCampaign:
    def test_run_is_deterministic_and_green(self, tmp_path):
        config = FuzzConfig(
            oracles=FAST_ORACLES, cases=9, seed=2026,
            artifact_dir=tmp_path / "a",
        )
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert first.ok and second.ok
        key = lambda r: [(o.oracle, o.index, o.ok) for o in r.outcomes]  # noqa: E731
        assert key(first) == key(second)
        assert not list((tmp_path / "a").glob("*.json"))

    def test_parallel_matches_serial_schedule(self, tmp_path):
        serial = run_fuzz(FuzzConfig(
            oracles=("kernels", "memo"), cases=6, seed=4,
            artifact_dir=tmp_path,
        ))
        parallel = run_fuzz(FuzzConfig(
            oracles=("kernels", "memo"), cases=6, seed=4, jobs=2,
            artifact_dir=tmp_path,
        ))
        key = lambda r: sorted((o.oracle, o.index, o.ok) for o in r.outcomes)  # noqa: E731
        assert key(serial) == key(parallel)

    def test_parallel_workers_report_merged_metrics(self, tmp_path):
        # Pool workers run real registries whose per-case deltas merge
        # back into the parent (like the characterize/ATPG/MC pools),
        # so --jobs N counter totals equal --jobs 1 and no
        # "uninstrumented workers" warning remains.
        import warnings

        from repro.obs import use_registry

        def totals(jobs):
            with use_registry() as registry:
                with warnings.catch_warnings():
                    warnings.simplefilter("error", RuntimeWarning)
                    run_fuzz(FuzzConfig(
                        oracles=("kernels",), cases=2, seed=5, jobs=jobs,
                        artifact_dir=tmp_path,
                    ))
                snapshot = registry.snapshot()["counters"]
            return {
                name: value for name, value in snapshot.items()
                if name.startswith(("fuzz.", "sta."))
            }

        serial, parallel = totals(1), totals(2)
        assert parallel["fuzz.cases"] == 2
        assert parallel.get("sta.gates_evaluated", 0) > 0
        assert parallel == serial

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(cases=None, time_budget=None)
        with pytest.raises(ValueError):
            FuzzConfig(cases=0)


class TestPlantedBug:
    def test_caught_shrunk_and_replayable(self, monkeypatch, tmp_path):
        plant_kernel_bug(monkeypatch)
        case = generate_case("kernels", PLANTED_SEED, PLANTED_INDEX)
        result = run_oracle(case)
        assert not result.ok, "planted kernel bug was not detected"

        shrunk = shrink_case(case, max_checks=400)
        assert shrunk.reduced
        assert case_size(shrunk.case) < case_size(case)
        assert len(shrunk.case.circuit["gates"]) <= 3
        assert not run_oracle(shrunk.case).ok

        path = write_artifact(
            case, result.detail, directory=tmp_path,
            shrunk=shrunk.case, shrink_note=shrunk.summary(),
        )
        replayed_case, replayed = replay_artifact(path)
        assert replayed_case.to_dict() == shrunk.case.to_dict()
        assert not replayed.ok

    def test_runner_writes_artifact_for_failure(self, monkeypatch, tmp_path):
        plant_kernel_bug(monkeypatch)
        config = FuzzConfig(
            oracles=("kernels",), cases=PLANTED_INDEX + 1,
            seed=PLANTED_SEED, artifact_dir=tmp_path,
        )
        report = run_fuzz(config)
        assert not report.ok
        failure = report.failures[0]
        assert failure.artifact is not None
        assert failure.shrunk_gates is not None
        assert failure.shrunk_gates <= 3
        payload = load_artifact(failure.artifact)
        assert payload["seed"] == PLANTED_SEED
        assert "shrunk" in payload
        assert "FAILURE" in report.format_summary()

    def test_artifact_passes_once_bug_is_fixed(self, monkeypatch, tmp_path):
        with monkeypatch.context() as patched:
            plant_kernel_bug(patched)
            case = generate_case("kernels", PLANTED_SEED, PLANTED_INDEX)
            detail = run_oracle(case).detail
            path = write_artifact(case, detail, directory=tmp_path)
        # Monkeypatch undone: the real kernel is back, the replay passes.
        _, result = replay_artifact(path)
        assert result.ok


class TestCaseSurgery:
    def test_window_list_round_trip(self):
        w = DirWindow(a_s=1e-10, a_l=3e-10, t_s=2e-10, t_l=4e-10, state=1)
        assert window_from_list(window_to_list(w)) == w
        assert window_from_list(window_to_list(DirWindow.impossible())) \
            == DirWindow.impossible()

    def test_prune_to_cone(self):
        circ = {
            "name": "t", "inputs": ["a", "b", "c"], "outputs": ["y", "z"],
            "gates": [["x", "and", ["a", "b"]],
                      ["y", "or", ["x", "c"]],
                      ["z", "not", ["c"]]],
        }
        pruned = prune_circuit_dict(circ, ["z"])
        assert pruned["inputs"] == ["c"]
        assert [g[0] for g in pruned["gates"]] == ["z"]

    def test_delete_gate_promotes_pi(self):
        circ = {
            "name": "t", "inputs": ["a", "b"], "outputs": ["y"],
            "gates": [["x", "and", ["a", "b"]], ["y", "not", ["x"]]],
        }
        reduced = delete_gate_from_dict(circ, "x")
        assert "x" in reduced["inputs"]
        assert [g[0] for g in reduced["gates"]] == ["y"]
        assert delete_gate_from_dict(circ, "a") is None

    def test_faults_filtered_to_surviving_lines(self):
        circ = {"name": "t", "inputs": ["a"], "outputs": ["y"],
                "gates": [["y", "not", ["a"]]]}
        faults = [
            {"aggressor": "a", "victim": "y"},
            {"aggressor": "gone", "victim": "y"},
            {"aggressor": "y", "victim": "y"},
        ]
        assert faults_valid_for(circ, faults) == [faults[0]]


class TestCli:
    def test_fuzz_list_oracles(self, capsys):
        assert main(["fuzz", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out

    def test_fuzz_green_run(self, tmp_path, capsys):
        rc = main([
            "fuzz", "--oracles", "kernels,memo", "--cases", "6",
            "--seed", "7", "--artifact-dir", str(tmp_path),
        ])
        assert rc == 0
        assert "0 failures" in capsys.readouterr().out

    def test_fuzz_unknown_oracle_is_an_error(self, tmp_path):
        rc = main([
            "fuzz", "--oracles", "bogus", "--cases", "1",
            "--artifact-dir", str(tmp_path),
        ])
        assert rc == 2

    def test_fuzz_failure_exit_code_and_replay(
        self, monkeypatch, tmp_path, capsys
    ):
        with monkeypatch.context() as patched:
            plant_kernel_bug(patched)
            rc = main([
                "fuzz", "--oracles", "kernels", "--no-shrink",
                "--cases", str(PLANTED_INDEX + 1),
                "--seed", str(PLANTED_SEED),
                "--artifact-dir", str(tmp_path),
            ])
            assert rc == 1
            artifacts = sorted(tmp_path.glob("*.json"))
            assert artifacts
            assert main(["fuzz", "--replay", str(artifacts[0])]) == 1
        # Bug gone: the same artifact replays clean.
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 0
        assert "ok" in capsys.readouterr().out
