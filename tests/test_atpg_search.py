"""Tests for the timing-based ATPG (paper Section 7)."""


from repro.atpg import (
    ABORTED,
    AtpgConfig,
    CrosstalkAtpg,
    CrosstalkFault,
    DETECTED,
    UNTESTABLE,
    check_excitation,
    generate_fault_list,
    transition_literal,
)
from repro.atpg.faults import FaultySimulator
from repro.itr import ItrEngine
from repro.models import VShapeModel

NS = 1e-9


def make_fault(aggressor, victim, a_rise, v_rise, delta=0.2 * NS,
               window=0.5 * NS):
    return CrosstalkFault(
        aggressor=aggressor, victim=victim,
        aggressor_rising=a_rise, victim_rising=v_rise,
        delta=delta, window=window,
    )


class TestExcitationCheck:
    def test_feasible_on_unconstrained_c17(self, c17, library):
        engine = ItrEngine(c17, library)
        fault = make_fault("G10", "G16", True, False)
        values = engine.assign(
            engine.initial_values(), "G10", transition_literal(True)
        )
        values = engine.assign(values, "G16", transition_literal(False))
        result = engine.refine(values)
        verdict = check_excitation(fault, result)
        assert verdict.logic_possible
        assert verdict.alignment_possible
        assert verdict.feasible

    def test_logic_infeasible_detected(self, c17, library):
        engine = ItrEngine(c17, library)
        fault = make_fault("G10", "G16", True, False)
        # Force G10 steady: its rising transition becomes impossible.
        values = engine.assign(
            engine.initial_values(), "G10",
            transition_literal(True).parse("11"),
        )
        result = engine.refine(values)
        verdict = check_excitation(fault, result)
        assert not verdict.logic_possible
        assert not verdict.feasible

    def test_alignment_infeasible_with_tiny_window(self, c17, library):
        engine = ItrEngine(c17, library)
        # G10 (level 1) and G22 (level 3): arrivals are provably separated
        # by more than a femtosecond-scale coupling window.
        fault = make_fault("G10", "G22", True, False, window=1e-15)
        result = engine.refine(engine.initial_values())
        verdict = check_excitation(fault, result)
        assert verdict.logic_possible
        assert not verdict.alignment_possible


class TestGenerate:
    def test_detects_a_plantable_fault(self, c17, library):
        """A fault with generous delta/window on the c17 critical cone
        must be detected with a valid two-pattern test."""
        fault = make_fault("G10", "G16", True, False,
                           delta=0.3 * NS, window=1.0 * NS)
        atpg = CrosstalkAtpg(
            c17, library,
            config=AtpgConfig(use_itr=True, backtrack_limit=64,
                              period=0.30 * NS),
        )
        result = atpg.generate(fault)
        assert result.status == DETECTED
        assert result.vector is not None
        # Re-simulate to confirm the vector is a real test.
        faulty = FaultySimulator(
            c17, library, VShapeModel(), atpg.sta_config, fault=fault
        ).run(result.vector)
        clean = atpg._fault_free_sim.run(result.vector)
        threshold = atpg.period + atpg.config.detect_guard
        late = [
            po for po in c17.outputs
            if faulty.events[po] and faulty.events[po].arrival > threshold
        ]
        assert late
        assert any(
            clean.events[po] is None
            or clean.events[po].arrival <= threshold
            for po in late
        )

    def test_impossible_direction_untestable(self, c17, library):
        # G16 = NAND(G2, G11): it cannot fall while G10 rises if we force
        # a conflicting logic requirement.  Use a same-line-cone conflict:
        # victim G10 rising requires G1 or G3 falling; aggressor G11
        # rising requires G3 or G6 falling; both are satisfiable, so pick
        # a fault whose excitation truly conflicts: G22 and G10 both
        # rising is impossible since G10 rising forces G22's input high.
        fault = make_fault("G10", "G22", True, True)
        atpg = CrosstalkAtpg(c17, library,
                             config=AtpgConfig(backtrack_limit=64))
        result = atpg.generate(fault)
        assert result.status == UNTESTABLE

    def test_alignment_untestable_with_itr(self, c17, library):
        fault = make_fault("G10", "G22", True, False, window=1e-15)
        atpg = CrosstalkAtpg(c17, library,
                             config=AtpgConfig(use_itr=True))
        result = atpg.generate(fault)
        assert result.status == UNTESTABLE
        assert result.reason == "timing alignment"

    def test_without_itr_no_timing_proof(self, c17, library):
        """The same alignment-infeasible fault cannot be *proved*
        untestable without ITR; the search grinds to abort/exhaustion."""
        fault = make_fault("G10", "G22", True, False, window=1e-15)
        atpg = CrosstalkAtpg(
            c17, library,
            config=AtpgConfig(use_itr=False, backtrack_limit=16),
        )
        result = atpg.generate(fault)
        assert result.status in (ABORTED, UNTESTABLE)
        assert result.reason != "timing alignment"

    def test_backtrack_limit_aborts(self, c880s, library):
        faults = generate_fault_list(c880s, 6, seed=2)
        atpg = CrosstalkAtpg(
            c880s, library,
            config=AtpgConfig(use_itr=False, backtrack_limit=1),
        )
        summary = atpg.run_all(faults)
        assert summary.count(ABORTED) >= 1


class TestEfficiencyExperiment:
    def test_itr_raises_efficiency(self, c880s, library):
        """The Section 7 claim: ITR pruning resolves more faults within
        the same backtrack budget."""
        faults = generate_fault_list(
            c880s, 12, seed=5, delta=0.4 * NS, window=0.35 * NS
        )
        period_probe = CrosstalkAtpg(c880s, library, config=AtpgConfig())
        period = period_probe._sta.output_max_arrival() * 0.85
        with_itr = CrosstalkAtpg(
            c880s, library,
            config=AtpgConfig(use_itr=True, backtrack_limit=24,
                              period=period),
        ).run_all(faults)
        without_itr = CrosstalkAtpg(
            c880s, library,
            config=AtpgConfig(use_itr=False, backtrack_limit=24,
                              period=period),
        ).run_all(faults)
        assert with_itr.efficiency > without_itr.efficiency

    def test_summary_counters(self, c17, library):
        fault = make_fault("G10", "G22", True, True)
        atpg = CrosstalkAtpg(c17, library, config=AtpgConfig())
        summary = atpg.run_all([fault])
        assert summary.count(UNTESTABLE) == 1
        assert summary.efficiency == 1.0

    def test_empty_fault_list(self, c17, library):
        atpg = CrosstalkAtpg(c17, library, config=AtpgConfig())
        assert atpg.run_all([]).efficiency == 0.0
