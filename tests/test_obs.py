"""Tests for the instrumentation subsystem (``repro.obs``)."""

import json

import pytest

from repro.atpg import AtpgConfig, CrosstalkAtpg, generate_fault_list
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    disable,
    enable,
    format_summary,
    get_registry,
    read_trace,
    snapshot_from_trace,
    trace_events,
    use_registry,
    write_trace,
)
from repro.spice import ConvergenceError

NS = 1e-9


class TestRegistry:
    def test_counter_identity_and_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("x.count")
        assert reg.counter("x.count") is c
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.snapshot()["counters"]["x.count"] == 5

    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("x.level")
        g.set(1)
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_percentiles_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("x.dist")
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 5.0
        assert h.percentile(25) == 2.0  # linear interpolation on the grid
        digest = h.summary()
        assert digest["count"] == 5
        assert digest["mean"] == pytest.approx(3.0)

    def test_reset_zeroes_in_place(self):
        """Handles captured before reset must stay live afterwards."""
        reg = MetricsRegistry()
        c = reg.counter("x.count")
        h = reg.histogram("x.dist")
        c.inc(7)
        h.observe(1.0)
        with reg.span("phase"):
            pass
        reg.reset()
        assert c.value == 0
        assert h.count == 0
        assert reg.spans == []
        c.inc()  # same object still feeds the registry
        assert reg.counter("x.count") is c
        assert reg.snapshot()["counters"]["x.count"] == 1

    def test_timer_observes_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("x.elapsed_s"):
            pass
        digest = reg.histogram("x.elapsed_s").summary()
        assert digest["count"] == 1
        assert digest["max"] >= 0.0

    def test_span_nesting_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        paths = [(s.path, s.depth) for s in reg.spans]
        # Spans are recorded in completion order: inner first.
        assert paths == [("outer/inner", 1), ("outer", 0)]


class TestDisabled:
    def test_default_registry_is_null(self):
        assert isinstance(get_registry(), NullRegistry)

    def test_null_registry_shares_noop_handles(self):
        c1 = NULL_REGISTRY.counter("a")
        c2 = NULL_REGISTRY.counter("b")
        assert c1 is c2
        c1.inc(100)
        assert c1.value == 0
        assert NULL_REGISTRY.counters == {}
        with NULL_REGISTRY.timer("t"):
            pass
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.histograms == {}
        assert NULL_REGISTRY.spans == []

    def test_enable_disable_roundtrip(self):
        try:
            reg = enable()
            assert reg.enabled
            assert get_registry() is reg
            assert enable() is reg  # idempotent while enabled
        finally:
            disable()
        assert not get_registry().enabled

    def test_use_registry_restores_previous(self):
        before = get_registry()
        with use_registry() as reg:
            assert get_registry() is reg
            assert reg.enabled
        assert get_registry() is before


class TestEmitters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("atpg.decisions").inc(12)
        reg.gauge("sta.period_s").set(1.5e-9)
        for v in (0.5, 1.0, 2.0):
            reg.histogram("spice.settle_s").observe(v)
        with reg.span("run"):
            with reg.span("inner"):
                pass
        return reg

    def test_format_summary_sections(self):
        text = format_summary(self._populated())
        assert "counters:" in text
        assert "atpg.decisions" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "spans:" in text

    def test_format_summary_empty(self):
        assert "(no metrics recorded)" in format_summary(MetricsRegistry())

    def test_trace_roundtrip(self, tmp_path):
        reg = self._populated()
        path = write_trace(reg, tmp_path / "trace.jsonl")
        # Every line parses as standalone JSON.
        lines = path.read_text().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0] == {"type": "meta", "version": 2}
        assert events[1]["type"] == "manifest"
        assert snapshot_from_trace(read_trace(path)) == reg.snapshot()

    def test_trace_contains_spans(self):
        events = trace_events(self._populated())
        spans = [e for e in events if e["type"] == "span"]
        assert [s["path"] for s in spans] == ["run/inner", "run"]


class TestConvergenceError:
    def test_context_in_message_and_attributes(self):
        err = ConvergenceError(
            "Newton failed",
            sim_time=2.5e-9,
            step=1e-12,
            newton_iterations=80,
            worst_node="out",
        )
        assert err.sim_time == 2.5e-9
        assert err.step == 1e-12
        assert err.newton_iterations == 80
        assert err.worst_node == "out"
        text = str(err)
        assert "t=2.500e-09s" in text
        assert "80 Newton iterations" in text
        assert "'out'" in text

    def test_plain_message_unchanged(self):
        assert str(ConvergenceError("boom")) == "boom"


class TestAtpgIntegration:
    def test_registry_counters_match_atpg_stats(self, c17, library):
        """Registry counters and the public AtpgStats must agree."""
        faults = generate_fault_list(
            c17, 6, seed=3, delta=0.4 * NS, window=0.12 * NS
        )
        with use_registry() as reg:
            atpg = CrosstalkAtpg(
                c17, library, config=AtpgConfig(backtrack_limit=48)
            )
            summary = atpg.run_all(faults)
        stats = summary.stats
        counters = reg.snapshot()["counters"]
        assert stats.faults == len(faults)
        assert counters["atpg.faults"] == stats.faults
        assert counters["atpg.decisions"] == stats.decisions
        assert counters.get("atpg.backtracks", 0) == stats.backtracks
        assert counters["atpg.itr_prunes"] == stats.itr_prunes
        assert counters["atpg.detected"] == stats.detected
        assert counters["atpg.untestable"] == stats.untestable
        assert counters["atpg.aborted"] == stats.aborted
        assert stats.decisions > 0
        assert stats.detected + stats.untestable + stats.aborted == len(faults)
        # The search engine exercises ITR and STA instrumentation too.
        assert counters["itr.refinements"] > 0
        assert counters["sta.gates_evaluated"] > 0

    def test_stats_accumulate_and_summary_delta(self, c17, library):
        faults = generate_fault_list(
            c17, 2, seed=1, delta=0.4 * NS, window=0.12 * NS
        )
        atpg = CrosstalkAtpg(c17, library)
        first = atpg.run_all(faults)
        second = atpg.run_all(faults)
        # Per-run deltas are equal; the engine-wide stats accumulate.
        assert second.stats.faults == first.stats.faults == 2
        assert atpg.stats.faults == 4

    def test_works_with_instrumentation_disabled(self, c17, library):
        """AtpgStats must be populated even under the null registry."""
        assert not get_registry().enabled
        faults = generate_fault_list(
            c17, 2, seed=1, delta=0.4 * NS, window=0.12 * NS
        )
        summary = CrosstalkAtpg(c17, library).run_all(faults)
        assert summary.stats.faults == 2
        assert summary.stats.decisions > 0
