"""Shared fixtures: the packaged characterized library and benchmark circuits."""

import pytest

from repro.characterize import CellLibrary
from repro.circuit import load_packaged_bench


@pytest.fixture(scope="session")
def library():
    """The characterized cell library shipped with the package."""
    return CellLibrary.load_default()


@pytest.fixture(scope="session")
def c17():
    return load_packaged_bench("c17")


@pytest.fixture(scope="session")
def c880s():
    return load_packaged_bench("c880s")
