"""Bit-parity and batching semantics of the level-compiled STA pass.

``repro.sta.compile`` promises the same contract as every other fast
path in this tree: **bit-identical** windows, on every line, in every
direction, against the gate-at-a-time analyzer (itself parity-locked to
the scalar reference by ``test_perf_parity``).  These tests hold the
compiled pass to it across circuits, delay models, boundary-scenario
batches, per-PI overrides, and the Monte Carlo sample axis.
"""

import numpy as np
import pytest

from repro.circuit import load_packaged_bench
from repro.models import NonCtrlAwareModel, PinToPinModel, VShapeModel
from repro.sta import LevelCompiledAnalyzer
from repro.sta.analysis import PerfConfig, StaConfig, TimingAnalyzer
from repro.sta.windows import DirWindow, LineTiming
from repro.stat.engine import MonteCarloEngine
from tests.test_perf_parity import assert_results_equal

NS = 1e-9

MODELS = [VShapeModel, PinToPinModel, NonCtrlAwareModel]


@pytest.mark.parametrize("model_cls", MODELS)
@pytest.mark.parametrize("bench", ["c17", "c432s", "c880s"])
def test_level_pass_parity(bench, model_cls, library):
    """The compiled pass matches the gate engine bit for bit."""
    circuit = load_packaged_bench(bench)
    gate = TimingAnalyzer(circuit, library, model_cls()).analyze()
    level = LevelCompiledAnalyzer(circuit, library, model_cls()).analyze()
    assert_results_equal(circuit, gate, level)


@pytest.mark.parametrize("model_cls", MODELS)
@pytest.mark.parametrize("bench", ["c5315s", "c7552s"])
def test_level_pass_parity_large(bench, model_cls, library):
    """Parity holds on the largest packaged circuits too."""
    circuit = load_packaged_bench(bench)
    gate = TimingAnalyzer(circuit, library, model_cls()).analyze()
    level = LevelCompiledAnalyzer(circuit, library, model_cls()).analyze()
    assert_results_equal(circuit, gate, level)


def test_engine_dispatch_through_perf_config(library, c880s):
    """PerfConfig(engine='level') routes analyze() to the compiled pass."""
    gate = TimingAnalyzer(c880s, library).analyze()
    analyzer = TimingAnalyzer(
        c880s, library, perf=PerfConfig(engine="level")
    )
    assert_results_equal(c880s, gate, analyzer.analyze())
    # The compiled form is built once and reused across calls.
    compiled = analyzer._level
    assert compiled is not None
    assert_results_equal(c880s, gate, analyzer.analyze())
    assert analyzer._level is compiled


def test_perf_config_rejects_unknown_engine():
    with pytest.raises(ValueError, match="engine"):
        PerfConfig(engine="warp")
    with pytest.raises(ValueError, match="engine"):
        MonteCarloEngine(
            load_packaged_bench("c17"), None, engine="warp"
        )


def test_boundary_batch_matches_separate_analyses(library):
    """One batched pass over B scenarios == B single-scenario analyses."""
    circuit = load_packaged_bench("c432s")
    scenarios = [
        ((0.0, 0.0), (0.10 * NS, 0.10 * NS)),
        ((0.0, 0.45 * NS), (0.08 * NS, 0.30 * NS)),
        ((0.05 * NS, 0.20 * NS), (0.12 * NS, 0.18 * NS)),
        ((0.0, 1.0 * NS), (0.05 * NS, 0.50 * NS)),
    ]
    analyzer = LevelCompiledAnalyzer(circuit, library)
    batched = analyzer.analyze_boundaries(scenarios)
    assert len(batched) == len(scenarios)
    for scenario, result in zip(scenarios, batched):
        arrival, trans = scenario
        config = StaConfig(pi_arrival=arrival, pi_trans=trans)
        single = TimingAnalyzer(circuit, library, config=config).analyze()
        assert_results_equal(circuit, single, result)


def test_pi_override_parity(library, c880s):
    """Per-PI overrides flow through the compiled pass unchanged."""
    overrides = {
        c880s.inputs[0]: LineTiming(
            rise=DirWindow(0.0, 0.3 * NS, 0.1 * NS, 0.2 * NS),
            fall=DirWindow.impossible(),
        ),
        c880s.inputs[1]: LineTiming(
            rise=DirWindow.point(0.05 * NS, 0.12 * NS),
            fall=DirWindow.point(0.02 * NS, 0.15 * NS),
        ),
    }
    gate = TimingAnalyzer(c880s, library).analyze(pi_overrides=overrides)
    level = LevelCompiledAnalyzer(c880s, library).analyze(
        pi_overrides=overrides
    )
    assert_results_equal(c880s, gate, level)


def test_propagate_rejects_bad_batch_inputs(library):
    circuit = load_packaged_bench("c17")
    analyzer = LevelCompiledAnalyzer(circuit, library)
    n = analyzer.compiled.n_gates
    with pytest.raises(ValueError, match="mutually exclusive"):
        analyzer.propagate(
            factors=np.ones((n, 2)),
            boundaries=[((0.0, 0.0), (0.1 * NS, 0.1 * NS))],
        )
    with pytest.raises(ValueError, match="factor rows"):
        analyzer.propagate(factors=np.ones((n + 1, 2)))
    with pytest.raises(ValueError, match="boundary"):
        analyzer.propagate(boundaries=[])


@pytest.mark.parametrize("model_cls", [VShapeModel, NonCtrlAwareModel])
def test_mc_level_engine_bitwise(model_cls, library):
    """MC blocks through the compiled pass equal the per-gate engine."""
    circuit = load_packaged_bench("c432s")
    gate = MonteCarloEngine(circuit, library, model_cls())
    level = MonteCarloEngine(circuit, library, model_cls(), engine="level")
    rng = np.random.default_rng(5)
    factors = 1.0 + 0.08 * rng.standard_normal((gate.n_gates, 7))
    wg = gate.propagate(factors)
    wl = level.propagate(factors)
    for line in circuit.lines:
        for direction in range(2):
            a, b = wg[line][direction], wl[line][direction]
            assert a.state == b.state, f"{line}[{direction}]"
            if not a.is_active:
                continue
            for field in ("a_s", "a_l", "t_s", "t_l"):
                assert np.array_equal(
                    getattr(a, field), getattr(b, field)
                ), f"{line}[{direction}].{field}"


def test_run_mc_engine_invariance(library):
    """run_mc results do not depend on the engine choice."""
    from repro.stat import run_mc

    circuit = load_packaged_bench("c432s")
    kwargs = dict(samples=24, seed=9, block=8)
    gate = run_mc(circuit, library, engine="gate", **kwargs)
    level = run_mc(circuit, library, engine="level", **kwargs)
    assert np.array_equal(gate.po_max, level.po_max)
    assert np.array_equal(gate.po_min, level.po_min)


def test_level_counters_account_per_gate(library):
    """The compiled pass books one evaluation per gate per pass."""
    from repro.obs import MetricsRegistry, get_registry, set_registry

    circuit = load_packaged_bench("c432s")
    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        registry = get_registry()
        analyzer = LevelCompiledAnalyzer(circuit, library)
        n_gates = analyzer.compiled.n_gates
        analyzer.analyze()
        assert registry.counter("sta.gates_evaluated").value == n_gates
        assert registry.counter("sta.corner_calls").value == 2 * n_gates
        assert registry.counter("sta.compile.passes").value == 1
        assert registry.counter("sta.compile.columns").value == 1
        # A 5-column batch is still one pass of per-gate work.
        analyzer.analyze_boundaries(
            [((0.0, 0.0), (0.1 * NS, 0.1 * NS))] * 5
        )
        assert registry.counter("sta.gates_evaluated").value == 2 * n_gates
        assert registry.counter("sta.corner_calls").value == 4 * n_gates
        assert registry.counter("sta.compile.passes").value == 2
        assert registry.counter("sta.compile.columns").value == 6
    finally:
        set_registry(previous)
