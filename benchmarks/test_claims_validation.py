"""Benchmark: Section 3.5 — validation of Claims 1 and 2."""

from repro.experiments import claims

from conftest import save_report


def test_claims_validation(benchmark, results_dir):
    result = benchmark.pedantic(claims.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # Claim 1: the delay minimum sits at zero skew for every (T_X, T_Y).
    assert result.findings["claim1_minimum_at_zero_skew"]
    # Claim 2: the V-shape stays within a modest relative error of the
    # simulated curve across the grid.
    assert result.findings["claim2_worst_relative_error_pct"] < 30.0
