"""Benchmark: extension — multi-corner PVT switching windows.

The paper signs off at one operating point; the repository rescales the
characterized K-coefficients to PVT corners and derives every corner's
windows in one corner-batched pass.  This benchmark validates the
structural guarantees the corner flow rests on.
"""

from repro.experiments import extension_pvt

from conftest import save_report


def test_ext_pvt(benchmark, results_dir):
    result = benchmark.pedantic(extension_pvt.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # The batched N-corner pass is the single-corner passes, bitwise.
    assert result.findings["batched_bit_identical_to_separate"]
    # The merged envelope never clips a per-corner window.
    assert result.findings["merged_bounds_every_corner"]
    # Physics: slow silicon is materially slower than fast silicon, and
    # site-applied derates widen windows at least as much as the flat
    # end-multiplier they name.
    assert result.findings["slow_over_fast_setup"] > 2.0
    assert result.findings["derate_widens_both_sides"]
    assert result.findings["derated_setup_over_slow"] >= 1.06
