"""Benchmark: ablations of the extended model's design choices."""

from repro.experiments import ablations

from conftest import save_report


def test_ablations(benchmark, results_dir):
    result = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # No ingredient hurts accuracy...
    assert result.findings["all_ingredients_non_negative"]
    # ...and position-awareness plus multi-input scaling measurably help.
    assert result.findings["position_gain_ns"] > 0.0
    assert result.findings["multi_input_gain_ns"] >= 0.0


def test_lookup_model_coverage_limitation(benchmark, library_table):
    """Table-lookup models cannot extend to more variables (ref [17])."""
    import pytest

    from repro.models import InputEvent, LookupModel, ModelCoverageError

    table, nand2 = library_table
    model = LookupModel(table)
    events2 = [
        InputEvent(0, 0.0, 0.4e-9, False),
        InputEvent(1, 0.0, 0.4e-9, False),
    ]
    delay, _ = benchmark(
        model.controlling_response, nand2, events2, nand2.ref_load
    )
    assert delay > 0
    # Inside its table, lookup is close to the proposed model...
    from repro.models import VShapeModel

    ours, _ = VShapeModel().controlling_response(
        nand2, events2, nand2.ref_load
    )
    assert delay == pytest.approx(ours, abs=0.05e-9)
    # ...but a third simultaneous input is simply outside its coverage.
    events3 = events2 + [InputEvent(2, 0.0, 0.4e-9, False)]
    with pytest.raises(ModelCoverageError):
        model.controlling_response(nand2, events3, nand2.ref_load)
