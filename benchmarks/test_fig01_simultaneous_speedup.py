"""Benchmark: Figure 1 — simultaneous to-controlling switching speed-up."""

from repro.experiments import fig01

from conftest import save_report


def test_fig01_simultaneous_speedup(benchmark, results_dir):
    result = benchmark.pedantic(fig01.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # Shape of the paper's Figure 1: a clear first-order speed-up.  The
    # paper measures 0.30 vs 0.17 ns (ratio ~1.76) on its technology.
    ratio = result.findings["speedup_ratio"]
    assert 1.3 < ratio < 2.5
    assert result.findings["delay_both_ns"] < result.findings["delay_single_ns"]
