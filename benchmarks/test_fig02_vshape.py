"""Benchmark: Figure 2 — delay vs skew and its V-shape approximation."""

from repro.experiments import fig02

from conftest import save_report


def test_fig02_vshape(benchmark, results_dir):
    result = benchmark.pedantic(fig02.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # The measured curve is a V with its minimum at zero skew (Claim 1).
    assert result.findings["min_delay_at_zero_skew"]
    # Anchors are ordered like the paper's Figure 2.
    assert result.findings["anchor_D0R_ns"] < result.findings["anchor_DR_ns"]
    assert result.findings["anchor_D0R_ns"] < result.findings["anchor_DYR_ns"]
    assert result.findings["anchor_SR_ns"] > 0
    assert result.findings["anchor_SYR_ns"] > 0
    # The approximation tracks the curve: tails nearly exact, interior
    # within the linear-approximation error the paper accepts.
    assert result.findings["tail_error_ns"] < 0.02
    assert result.findings["max_abs_error_ns"] < 0.06
