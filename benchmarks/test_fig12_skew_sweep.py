"""Benchmark: Figure 12 — skew sweep across all delay models."""

from repro.experiments import fig12

from conftest import save_report


def test_fig12_skew_sweep(benchmark, results_dir):
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # Who wins, as in the paper: proposed best overall; Jun collapses at
    # large skew; Nabavi worst in aggregate.
    assert result.findings["proposed_best_overall"]
    assert result.findings["jun_fails_at_large_skew"]
    assert result.findings["proposed_tail_err_ns"] < 0.02
    assert result.findings["jun_tail_err_ns"] > 0.1
