"""Benchmark: Figure 5 — trends of timing functions vs each variable."""

from repro.experiments import fig05

from conftest import save_report


def test_fig05_trends(benchmark, results_dir):
    result = benchmark.pedantic(fig05.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # Delay vs T is monotone or bi-tonic; at least one library direction
    # exhibits the bi-tonic case with negative pin-to-pin delay.
    assert result.findings["nand_delay_shape"] in (
        "monotone-increasing", "bi-tonic",
    )
    assert result.findings["nor_delay_shape"] == "bi-tonic"
    assert result.findings["nor_delay_goes_negative"]
    # Output transition time always increases with T.
    assert result.findings["trans_monotone"]
    # Minimal delay at zero skew (Claim 1).
    assert abs(result.findings["delay_min_skew_ns"]) < 0.06
