"""Benchmark: Section 7 — crosstalk ATPG efficiency with/without ITR."""

from repro.experiments import sec7

from conftest import save_report

NS = 1e-9


def test_sec7_atpg_efficiency(benchmark, results_dir):
    result = benchmark.pedantic(sec7.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # The paper's experiment: ITR lifts efficiency dramatically
    # (39.63% -> 82.75% in the paper; we assert the same ordering and a
    # substantial gap under an identical backtrack budget).
    assert result.findings["itr_wins"]
    assert result.findings["gap_pct"] > 20.0
    assert result.findings["efficiency_itr_pct"] > 60.0


def test_sec7_detection_regime(benchmark, results_dir):
    """Tight-period regime: actual two-pattern tests are generated."""
    result = benchmark.pedantic(
        sec7.run,
        kwargs={"period_fraction": 0.15, "n_faults": 30},
        rounds=1,
        iterations=1,
    )
    (results_dir / "section-7-detection.txt").write_text(
        result.format_report() + "\n"
    )
    print("\n" + result.format_report())
    by_label = {row[0]: row for row in result.rows}
    assert by_label["with ITR"][1] >= 1  # detected >= 1
    assert result.findings["itr_wins"] or (
        result.findings["efficiency_itr_pct"]
        >= result.findings["efficiency_no_itr_pct"]
    )
