"""Benchmark: Figure 11 — zero-skew simultaneous switch, T_Y sweep."""

from repro.experiments import fig11

from conftest import save_report


def test_fig11_transition_sweep(benchmark, results_dir):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # Proposed and Jun track the simulator at zero skew; Nabavi is the
    # loser once the two transition times diverge.
    assert result.findings["proposed_beats_nabavi"]
    assert result.findings["jun_close_at_zero_skew"]
    assert result.findings["proposed_max_err_ns"] < 0.05
    assert result.findings["nabavi_max_err_ns"] > 0.05
