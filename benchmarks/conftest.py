"""Benchmark-harness fixtures.

Each benchmark regenerates one of the paper's tables/figures via
:mod:`repro.experiments`, asserts its qualitative shape, and writes the
rendered report into ``benchmarks/results/`` for inspection (these files
are the raw material of EXPERIMENTS.md).
"""

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).resolve().parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def library_table():
    """A coarse NAND2 lookup table built from the simulator, plus the
    characterized NAND2 timing (for the lookup-model ablation)."""
    from repro.experiments.common import default_library
    from repro.models import build_lookup_table
    from repro.spice import GateCell
    from repro.tech import GENERIC_05UM

    ns = 1e-9
    cell = GateCell("nand", 2, GENERIC_05UM)
    table = build_lookup_table(
        cell,
        t_grid=[0.2 * ns, 0.5 * ns, 1.0 * ns],
        skew_grid=[-0.5 * ns, -0.2 * ns, 0.0, 0.2 * ns, 0.5 * ns],
    )
    return table, default_library().cell("NAND2")


def save_report(results_dir: Path, result) -> None:
    """Persist an experiment report next to the benchmarks."""
    (results_dir / f"{result.experiment}.txt").write_text(
        result.format_report() + "\n"
    )
