"""Benchmark: Table 2 — STA min-delay, pin-to-pin vs proposed model."""

from repro.experiments import table2

from conftest import save_report


def test_table2_sta_min_delay(benchmark, results_dir):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # The proposed model never reports a larger min-delay...
    assert result.findings["ours_never_larger"]
    # ...most of the suite improves, several circuits by 5%+ (the paper
    # reports 5-31% on six of nine circuits, none on the other three)...
    assert result.findings["circuits_with_any_improvement"] >= 5
    assert result.findings["circuits_with_5pct_error"] >= 3
    # ...with errors on the paper's scale (5-31%), not runaway...
    assert 1.05 <= result.findings["max_ratio"] <= 1.6
    # ...and the two models agree on max-delay.
    assert result.findings["max_delays_agree"]


def test_table2_single_circuit_sta_speed(benchmark):
    """Throughput benchmark: full dual-model STA on c880s."""
    result = benchmark(table2.run, circuits=["c880s"])
    assert result.rows[0][0] == "c880s"
