"""Benchmark: Figure 10 — input-position effect on a five-input NAND."""

from repro.experiments import fig10

from conftest import save_report


def test_fig10_nand5_position(benchmark, results_dir):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # Position-aware characterization beats the position-blind collapse.
    assert result.findings["proposed_beats_nabavi"]
    # The position penalty is substantial (the paper reports up to ~50%
    # for its technology; ours must show a clearly measurable effect).
    assert result.findings["position_penalty"] > 1.1
    # The proposed model stays close to the simulator.
    assert result.findings["proposed_max_err_ns"] < 0.05
    assert (
        result.findings["nabavi_max_err_ns"]
        > 2 * result.findings["proposed_max_err_ns"]
    )
