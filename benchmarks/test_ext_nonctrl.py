"""Benchmark: extension — simultaneous to-non-controlling switching.

The paper's Section 3.6 names this model as work in progress; the
repository implements it (Λ-shaped slow-down with pre-initialization
saturation) and this benchmark validates it against the simulator.
"""

from repro.experiments import nonctrl_ext

from conftest import save_report


def test_ext_nonctrl(benchmark, results_dir):
    result = benchmark.pedantic(nonctrl_ext.run, rounds=1, iterations=1)
    save_report(results_dir, result)
    print("\n" + result.format_report())

    # The hazard: the SDF max rule underestimates the zero-skew delay by
    # a first-order-visible margin.
    assert result.findings["sdf_underestimates_at_zero_pct"] > 15.0
    # The Λ-model fixes it and stays conservative at the peak.
    assert result.findings["lambda_beats_sdf"]
    assert result.findings["lambda_conservative_at_peak"]
    assert result.findings["lambda_max_err_ns"] < 0.04
