#!/usr/bin/env python3
"""Watching timing windows shrink under ITR (paper Section 5).

Starts from the fully unspecified assignment (where ITR coincides with
STA), then pins primary-input values one at a time — exactly what a
test generator does — and prints how the output timing windows of c17
narrow after each implication + refinement step.

Run:  python examples/itr_refinement.py
"""

from repro.characterize import CellLibrary
from repro.circuit import load_packaged_bench
from repro.itr import ItrEngine, TwoFrame

NS = 1e-9

#: The incremental decisions a test generator might make on c17:
#: (line, two-frame value).
DECISIONS = (
    ("G1", "10"),   # G1 definitely falls
    ("G2", "11"),   # G2 steady high
    ("G7", "11"),   # G7 steady high
    ("G3", "11"),   # G3 steady high
    ("G6", "10"),   # G6 definitely falls
)


def window_report(result, lines):
    parts = []
    for line in lines:
        timing = result.line(line)
        for tag, window in (("R", timing.rise), ("F", timing.fall)):
            if not window.is_active:
                parts.append(f"{line}.{tag}: --")
            else:
                parts.append(
                    f"{line}.{tag}: [{window.a_s / NS:.3f},"
                    f"{window.a_l / NS:.3f}]"
                )
    return "  ".join(parts)


def total_width(result, circuit):
    total = 0.0
    for line in circuit.lines:
        for window in (result.line(line).rise, result.line(line).fall):
            if window.is_active:
                total += window.arrival_width()
    return total


def main() -> None:
    circuit = load_packaged_bench("c17")
    library = CellLibrary.load_default()
    engine = ItrEngine(circuit, library)
    values = engine.initial_values()
    result = engine.refine(values)
    print("step 0 (all xx, i.e. plain STA):")
    print("  " + window_report(result, circuit.outputs))
    print(f"  sum of arrival-window widths: {total_width(result, circuit) / NS:.4f} ns")

    for step, (line, literal) in enumerate(DECISIONS, start=1):
        values = engine.assign(values, line, TwoFrame.parse(literal))
        result = engine.refine(values)
        print(f"\nstep {step}: set {line} = {literal}")
        print("  " + window_report(result, circuit.outputs))
        print(
            f"  sum of arrival-window widths: "
            f"{total_width(result, circuit) / NS:.4f} ns"
        )
        states = {
            po: (
                result.values[po],
                result.line(po).rise.state,
                result.line(po).fall.state,
            )
            for po in circuit.outputs
        }
        print(f"  output values/states: "
              + ", ".join(f"{po}={v} (S_R={sr}, S_F={sf})"
                          for po, (v, sr, sf) in states.items()))

    print(
        "\nWindows only ever narrow (monotone refinement), impossible"
        "\ntransitions lose their windows entirely, and fully specified"
        "\nvectors collapse windows to points — the properties the"
        "\ntiming-based ATPG relies on to prune its search space."
    )


if __name__ == "__main__":
    main()
