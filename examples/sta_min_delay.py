#!/usr/bin/env python3
"""STA with the simultaneous-switching model (the paper's Table 2).

Runs static timing analysis over the packaged benchmark circuits twice —
with the conventional pin-to-pin model and with the proposed model — and
reports the min-delay at the union of the primary outputs.  The paper's
observation: the pin-to-pin model *overestimates* min-delay by 5-31% on
ISCAS85 circuits, which matters for hold-time checks.

Run:  python examples/sta_min_delay.py [circuit ...]
"""

import sys
import time

from repro.characterize import CellLibrary
from repro.circuit import load_packaged_bench
from repro.models import PinToPinModel, VShapeModel
from repro.sta import TimingAnalyzer

NS = 1e-9
DEFAULT_CIRCUITS = ("c17", "c432s", "c880s", "c1355s", "c1908s", "c3540s")


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT_CIRCUITS)
    library = CellLibrary.load_default()
    print(f"{'circuit':<10} {'gates':>6} {'p2p min':>9} {'ours min':>9} "
          f"{'ratio':>6} {'max (both)':>11} {'time':>7}")
    for name in names:
        circuit = load_packaged_bench(name)
        started = time.time()
        ours = TimingAnalyzer(circuit, library, VShapeModel()).analyze()
        base = TimingAnalyzer(circuit, library, PinToPinModel()).analyze()
        elapsed = time.time() - started
        ratio = base.output_min_arrival() / ours.output_min_arrival()
        print(
            f"{name:<10} {len(circuit.gates):>6} "
            f"{base.output_min_arrival() / NS:>9.4f} "
            f"{ours.output_min_arrival() / NS:>9.4f} "
            f"{ratio:>6.3f} "
            f"{ours.output_max_arrival() / NS:>11.4f} "
            f"{elapsed:>6.2f}s"
        )
    print(
        "\nratio > 1 means conventional STA overestimates the earliest"
        "\npossible output arrival (optimistic for hold checks); the two"
        "\nmodels always agree on the max delay, as in the paper."
    )


if __name__ == "__main__":
    main()
