#!/usr/bin/env python3
"""Model-accuracy comparison: the paper's Figures 10, 11 and 12.

Regenerates the three model-comparison experiments — input-position
pin-to-pin delay (Fig. 10), zero-skew transition-time sweep (Fig. 11)
and the full skew sweep (Fig. 12) — printing the simulator reference
next to the proposed model and the Jun/Nabavi baselines.

Run:  python examples/model_accuracy.py
"""

from repro.experiments import fig10, fig11, fig12


def main() -> None:
    for module in (fig10, fig11, fig12):
        result = module.run()
        print(result.format_report())
        print()
    print(
        "Reading the findings: the proposed model's max error stays in "
        "the ~10-30 ps range across all three\nexperiments, while each "
        "baseline has a regime where its error is several times larger —"
        "\nposition-blindness for Nabavi (Fig. 10), unequal transition "
        "times for Nabavi (Fig. 11), and\nlarge skews for Jun (Fig. 12) "
        "— exactly the failure modes the paper identifies."
    )


if __name__ == "__main__":
    main()
