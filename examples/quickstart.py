#!/usr/bin/env python3
"""Quickstart: the simultaneous-switching delay model in five minutes.

1. Load the packaged characterized library (built once against the
   in-tree transistor-level simulator — the paper's Section 3.7
   "one-time effort").
2. Evaluate the V-shape delay model of a NAND2 over input skew.
3. Compare the prediction against a fresh transistor-level simulation
   and against the pin-to-pin baseline (the paper's Figure 2 story).

Run:  python examples/quickstart.py
"""

from repro.characterize import CellLibrary
from repro.models import InputEvent, PinToPinModel, VShapeModel
from repro.spice import GateCell, RampStimulus, simulate_gate
from repro.tech import GENERIC_05UM as TECH

NS = 1e-9
T_X = 0.5 * NS  # input X transition time
T_Y = 0.5 * NS  # input Y transition time
ARRIVAL = 2 * NS


def main() -> None:
    library = CellLibrary.load_default()
    nand2 = library.cell("NAND2")
    proposed = VShapeModel()
    pin2pin = PinToPinModel()

    # The V-shape itself: anchors of the piecewise-linear skew curve.
    shape = proposed.vshape(nand2, 0, 1, T_X, T_Y, nand2.ref_load)
    print("V-shape anchors for NAND2 (T_X = T_Y = 0.5 ns):")
    print(f"  D0  (zero-skew delay)     = {shape.d0 / NS:.4f} ns")
    print(f"  DR  (pin-to-pin, X side)  = {shape.dr_p / NS:.4f} ns")
    print(f"  DYR (pin-to-pin, Y side)  = {shape.dr_q / NS:.4f} ns")
    print(f"  SR  (saturation skew, +)  = {shape.s_pos / NS:.4f} ns")
    print(f"  SYR (saturation skew, -)  = {shape.s_neg / NS:.4f} ns")

    cell = GateCell("nand", 2, TECH)
    print("\nskew(ns) | simulated | proposed | pin-to-pin   (delays in ns)")
    for skew_ns in (-0.5, -0.25, -0.1, 0.0, 0.1, 0.25, 0.5):
        skew = skew_ns * NS
        sim = simulate_gate(cell, [
            RampStimulus.transition(False, ARRIVAL, T_X, TECH.vdd),
            RampStimulus.transition(False, ARRIVAL + skew, T_Y, TECH.vdd),
        ])
        events = [
            InputEvent(0, ARRIVAL, T_X, False),
            InputEvent(1, ARRIVAL + skew, T_Y, False),
        ]
        ours, _ = proposed.controlling_response(nand2, events, nand2.ref_load)
        base, _ = pin2pin.controlling_response(nand2, events, nand2.ref_load)
        print(
            f"  {skew_ns:+5.2f}  |  {sim.delay_from_earliest() / NS:7.4f}  "
            f"|  {ours / NS:6.4f}  |  {base / NS:6.4f}"
        )

    print(
        "\nThe proposed model follows the simulated V; the pin-to-pin"
        "\nbaseline is blind to the simultaneous-switching speed-up"
        "\n(compare the rows near zero skew)."
    )


if __name__ == "__main__":
    main()
