#!/usr/bin/env python3
"""Crosstalk delay-fault ATPG with and without ITR (paper Section 7).

Generates a random crosstalk fault list for a benchmark circuit and runs
the two-pattern test generator twice under the same backtrack budget:
once with incremental timing refinement pruning the search (alignment
and violation feasibility checked against refined windows after every
decision), once without.  The paper reports ITR lifting ATPG efficiency
from 39.63% to 82.75%.

Run:  python examples/atpg_crosstalk.py [circuit] [n_faults]
"""

import sys
import time

from repro.atpg import AtpgConfig, CrosstalkAtpg, generate_fault_list
from repro.characterize import CellLibrary
from repro.circuit import load_packaged_bench

NS = 1e-9


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c432s"
    n_faults = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    circuit = load_packaged_bench(name)
    library = CellLibrary.load_default()
    faults = generate_fault_list(
        circuit, n_faults, seed=1, delta=0.5 * NS, window=0.4 * NS
    )
    probe = CrosstalkAtpg(circuit, library, config=AtpgConfig())
    period = probe._sta.output_max_arrival() * 0.85
    print(f"{circuit!r}: {len(faults)} crosstalk faults, "
          f"period = {period / NS:.3f} ns, backtrack limit = 48\n")

    for use_itr in (False, True):
        config = AtpgConfig(use_itr=use_itr, backtrack_limit=48,
                            period=period)
        atpg = CrosstalkAtpg(circuit, library, config=config)
        started = time.time()
        summary = atpg.run_all(faults)
        elapsed = time.time() - started
        label = "with ITR   " if use_itr else "without ITR"
        print(
            f"{label}: detected={summary.count('detected'):3d}  "
            f"untestable={summary.count('untestable'):3d}  "
            f"aborted={summary.count('aborted'):3d}  "
            f"efficiency={100 * summary.efficiency:6.2f}%  "
            f"({elapsed:.1f}s)"
        )
        if use_itr:
            reasons = {}
            for result in summary.results:
                if result.status == "untestable":
                    reasons[result.reason] = reasons.get(result.reason, 0) + 1
            print(f"             untestability proofs: {reasons}")


if __name__ == "__main__":
    main()
