#!/usr/bin/env python3
"""Add simultaneous to-non-controlling data to the packaged library.

Characterizes the Λ-shape extension (see ``repro.models.nonctrl``) for
the two- and three-input NAND/NOR/AND/OR cells and rewrites
``src/repro/data/lib_generic05.json`` in place.  Cells not listed keep
``nonctrl = None`` and fall back to the SDF rule.

The sweeps go through the same parallel, cached runner as the main
characterization flow (``--jobs``, ``--no-cache``, ``--force``).

Usage:
    python scripts/extend_library_nonctrl.py [library.json] [--jobs N]
"""

import argparse
import time
from pathlib import Path

from repro.characterize import (
    CellLibrary,
    CharacterizationConfig,
    SweepCache,
    characterize_noncontrolling,
    make_runner,
    plan_nonctrl_jobs,
)
from repro.spice import GateCell
from repro.tech import GENERIC_05UM

EXTENDED_CELLS = (
    ("nand", 2), ("nand", 3),
    ("nor", 2), ("nor", 3),
    ("and", 2), ("or", 2),
)


def main(argv=None) -> int:
    default = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "data" / "lib_generic05.json"
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("library", nargs="?", default=default,
                        help="library JSON to extend in place")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPUs)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        default=True, help="disable the sweep cache")
    parser.add_argument("--force", action="store_true",
                        help="re-run sweeps even when cached")
    args = parser.parse_args(argv)

    path = Path(args.library)
    library = CellLibrary.load(path)
    config = CharacterizationConfig()
    runner = make_runner(
        GENERIC_05UM,
        jobs=args.jobs,
        cache=SweepCache() if args.cache else None,
        force=args.force,
    )
    cells = [
        GateCell(kind, n_inputs, GENERIC_05UM)
        for kind, n_inputs in EXTENDED_CELLS
    ]
    started = time.perf_counter()
    runner.prefetch(
        [job for c in cells if c.name in library
         for job in plan_nonctrl_jobs(c, config)]
    )
    for cell in cells:
        if cell.name not in library:
            print(f"skipping {cell.name} (not in library)")
            continue
        print(f"characterizing nonctrl for {cell.name} ...", flush=True)
        library.cells[cell.name].nonctrl = characterize_noncontrolling(
            cell, config, runner=runner
        )
    library.meta["nonctrl_extension"] = [
        f"{kind.upper()}{n}" for kind, n in EXTENDED_CELLS
    ]
    library.save(path)
    print(f"rewrote {path} ({time.perf_counter() - started:.1f} s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
