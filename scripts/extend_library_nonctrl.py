#!/usr/bin/env python3
"""Add simultaneous to-non-controlling data to the packaged library.

Characterizes the Λ-shape extension (see ``repro.models.nonctrl``) for
the two- and three-input NAND/NOR/AND/OR cells and rewrites
``src/repro/data/lib_generic05.json`` in place.  Cells not listed keep
``nonctrl = None`` and fall back to the SDF rule.

Usage:
    python scripts/extend_library_nonctrl.py [library.json]
"""

import sys
import time
from pathlib import Path

from repro.characterize import (
    CellLibrary,
    characterize_noncontrolling,
)
from repro.spice import GateCell
from repro.tech import GENERIC_05UM

EXTENDED_CELLS = (
    ("nand", 2), ("nand", 3),
    ("nor", 2), ("nor", 3),
    ("and", 2), ("or", 2),
)


def main() -> int:
    default = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "data" / "lib_generic05.json"
    )
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    library = CellLibrary.load(path)
    started = time.time()
    for kind, n_inputs in EXTENDED_CELLS:
        cell = GateCell(kind, n_inputs, GENERIC_05UM)
        if cell.name not in library:
            print(f"skipping {cell.name} (not in library)")
            continue
        print(f"characterizing nonctrl for {cell.name} ...", flush=True)
        library.cells[cell.name].nonctrl = characterize_noncontrolling(cell)
    library.meta["nonctrl_extension"] = [
        f"{kind.upper()}{n}" for kind, n in EXTENDED_CELLS
    ]
    library.save(path)
    print(f"rewrote {path} ({time.time() - started:.1f} s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
