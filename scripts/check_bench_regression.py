#!/usr/bin/env python
"""Gate CI on the timing micro-benchmarks.

Compares a fresh ``scripts/bench_timing.py`` run against the committed
baseline in ``benchmarks/results/BENCH_timing.json`` on *per-unit*
metrics (seconds per STA pass / ITR decision / ATPG fault), which are
comparable between ``--quick`` and full runs because both exercise the
same circuits — quick mode only lowers repeat counts.

The threshold is deliberately generous (default 2.5x): shared CI runners
are noisy, and the gate exists to catch order-of-magnitude regressions
(an accidentally disabled kernel path, a memo that stopped hitting), not
to police single-digit percentages.

Usage::

    python scripts/check_bench_regression.py \
        --current /tmp/BENCH_timing.json \
        [--baseline benchmarks/results/BENCH_timing.json] \
        [--threshold 2.5] [--allow-missing]

Exits 1 when any gated metric exceeds ``threshold * baseline`` — or is
missing from either report, since a silently skipped metric would let a
renamed key or a dropped bench section disable the gate forever
(``--allow-missing`` restores the old SKIP behaviour while a new
baseline lands).

Both reports carry a ``run_manifest`` provenance block (see
``repro.obs.manifest``); the gate prints the current run's provenance,
requires the block to be present (unless ``--allow-missing``), and notes
— without failing — environment differences against the baseline that
would explain timing deltas.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_timing.json"

#: (section, key) pairs gated on; all are seconds-per-unit-of-work.
GATED_METRICS = (
    ("sta_full_pass", "optimized_s_per_pass"),
    ("sta_full_pass_level", "level_s_per_pass"),
    ("sta_incremental", "incr_s_per_edit"),
    ("itr_refine", "optimized_s_per_decision"),
    ("atpg_with_itr", "s_per_fault_optimized"),
    ("mc", "mc_s_per_sample"),
    ("corner", "batched_s_per_corner"),
    ("server", "warm_s_per_query"),
)

#: Manifest fields printed for provenance when comparing reports.
_MANIFEST_SHOW = (
    "command",
    "package_version",
    "python_version",
    "numpy_version",
    "jobs",
    "wall_s",
)


def check_manifest(
    baseline: dict,
    current: dict,
    allow_missing: bool = False,
) -> int:
    """Compare the run-provenance blocks of the two reports.

    The current report must carry one (``bench_timing.py`` always writes
    it); a committed baseline predating manifests is tolerated with a
    note.  Environment mismatches (python/numpy version) are printed but
    never fail the gate — they explain timing deltas, they don't cause
    them here.
    """
    cur = current.get("run_manifest")
    base = baseline.get("run_manifest")
    if cur is None:
        if allow_missing:
            print("  run_manifest: SKIP (missing from current, allowed)")
            return 0
        print("  run_manifest: MISSING from current report")
        return 1
    print("  provenance (current):")
    for field in _MANIFEST_SHOW:
        print(f"    {field:<16} {cur.get(field)}")
    if base is None:
        print("  note: baseline predates run manifests; nothing to compare")
        return 0
    for field in ("python_version", "numpy_version", "package_version"):
        if base.get(field) != cur.get(field):
            print(
                f"  note: {field} differs from baseline "
                f"({base.get(field)} -> {cur.get(field)}) — expect "
                "timing noise"
            )
    return 0


def check(
    baseline: dict,
    current: dict,
    threshold: float,
    allow_missing: bool = False,
) -> int:
    failures = 0
    print(f"bench regression gate (threshold {threshold:.2f}x baseline):")
    failures += check_manifest(baseline, current, allow_missing)
    for section, key in GATED_METRICS:
        name = f"{section}.{key}"
        base = baseline.get(section, {}).get(key)
        cur = current.get(section, {}).get(key)
        if base is None or cur is None:
            # A silently skipped metric is a gate that stopped gating —
            # a renamed key or a dropped bench section would otherwise
            # pass CI forever.  Missing is a failure unless the caller
            # explicitly opts out (e.g. while a new baseline lands).
            if allow_missing:
                print(f"  {name:<40} SKIP (metric missing, allowed)")
            else:
                print(f"  {name:<40} MISSING (gate cannot run)")
                failures += 1
            continue
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= threshold else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(
            f"  {name:<40} base {base * 1e3:9.3f} ms  "
            f"now {cur * 1e3:9.3f} ms  ({ratio:5.2f}x)  {verdict}"
        )
    if failures:
        print(
            f"FAIL: {failures} metric(s) regressed past "
            f"{threshold:.2f}x the committed baseline or went missing"
        )
        return 1
    print("PASS: no gated metric regressed past the threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", required=True, metavar="JSON",
        help="fresh bench_timing.py output to check",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE), metavar="JSON",
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.5, metavar="X",
        help="fail when current > X * baseline (default: 2.5)",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="downgrade missing gated metrics from failure to SKIP "
        "(escape hatch while a new baseline lands)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("threshold must be > 1.0")
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    return check(
        baseline, current, args.threshold, allow_missing=args.allow_missing
    )


if __name__ == "__main__":
    sys.exit(main())
