#!/usr/bin/env python3
"""Validate the packaged library against fresh transistor simulations.

For every characterized cell, re-simulates a few spot points and reports
the fit error of the pin-to-pin arcs and (where applicable) the zero-skew
simultaneous-switching surface.  Run after changing the technology or
the characterization grids.

Usage:
    python scripts/validate_library.py [cell ...]
"""

import sys

from repro.characterize import CellLibrary
from repro.characterize.sweep import (
    multi_switch_delay,
    pin_to_pin_sweep,
)
from repro.spice import GateCell
from repro.tech import GENERIC_05UM

NS = 1e-9
SPOT_T = 0.45 * NS


def validate_cell(name: str, timing, library) -> dict:
    cell = GateCell(timing.kind, timing.n_inputs, GENERIC_05UM)
    report = {"cell": name}
    # Pin-to-pin spot check on pin 0 for each direction.
    errors = []
    for in_rising in (True, False):
        if timing.kind == "xor":
            points = pin_to_pin_sweep(
                cell, 0, in_rising, [SPOT_T], other_value=0
            )
            arc = timing.arc(0, in_rising, points[0].out_rising)
        else:
            points = pin_to_pin_sweep(cell, 0, in_rising, [SPOT_T])
            arc = timing.arc(0, in_rising, points[0].out_rising)
        predicted = arc.delay(SPOT_T)
        errors.append(abs(predicted - points[0].delay))
    report["pin_err_ps"] = max(errors) / 1e-12
    # Zero-skew simultaneous spot check.
    if timing.ctrl is not None:
        measured = multi_switch_delay(cell, [0, 1], SPOT_T)
        predicted = timing.ctrl.d0(SPOT_T, SPOT_T)
        report["d0_err_ps"] = abs(predicted - measured.delay) / 1e-12
    return report


def main() -> int:
    library = CellLibrary.load_default()
    names = sys.argv[1:] or sorted(library.cells)
    print(f"{'cell':<8} {'pin err (ps)':>13} {'D0 err (ps)':>12}")
    worst = 0.0
    for name in names:
        timing = library.cell(name)
        report = validate_cell(name, timing, library)
        d0 = report.get("d0_err_ps")
        print(
            f"{name:<8} {report['pin_err_ps']:>13.2f} "
            f"{d0 if d0 is not None else float('nan'):>12.2f}"
        )
        worst = max(worst, report["pin_err_ps"], d0 or 0.0)
    print(f"\nworst spot error: {worst:.2f} ps")
    return 0 if worst < 30.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
