#!/usr/bin/env python3
"""Build the packaged characterized cell library.

Thin wrapper over ``repro-sta characterize`` (the same code path): runs
the full characterization flow (Section 3.7 of the paper: a one-time
effort per cell library) against the generic 0.5 um technology and
writes ``src/repro/data/lib_generic05.json``.

Sweeps run in parallel (``--jobs``, default: all CPUs) and completed
sweeps are cached on disk (``~/.cache/repro-char`` or
``$REPRO_CACHE_DIR``), so an unchanged re-run issues zero new
transistor-level simulations.

Usage:
    python scripts/build_library.py [output.json] [--jobs N]
        [--no-cache] [--force] [--stats]
"""

import argparse

from repro.cli import main as cli_main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default=None,
                        help="output path (default: the packaged library)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPUs)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        default=True, help="disable the sweep cache")
    parser.add_argument("--force", action="store_true",
                        help="re-run sweeps even when cached")
    parser.add_argument("--stats", action="store_true",
                        help="print an instrumentation summary")
    args = parser.parse_args(argv)

    cmd = ["characterize", "-v"]
    if args.output:
        cmd += ["--out", args.output]
    if args.jobs is not None:
        cmd += ["--jobs", str(args.jobs)]
    if not args.cache:
        cmd += ["--no-cache"]
    if args.force:
        cmd += ["--force"]
    if args.stats:
        cmd += ["--stats"]
    return cli_main(cmd)


if __name__ == "__main__":
    raise SystemExit(main())
