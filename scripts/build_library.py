#!/usr/bin/env python3
"""Build the packaged characterized cell library.

Runs the full characterization flow (Section 3.7 of the paper: a one-time
effort per cell library) against the generic 0.5 um technology and writes
``src/repro/data/lib_generic05.json``.

Usage:
    python scripts/build_library.py [output.json]
"""

import logging
import sys
import time
from pathlib import Path

from repro.characterize import characterize_library
from repro.tech import GENERIC_05UM


def main() -> int:
    # Library code reports progress via logging; surface it here.
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    default = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "data" / "lib_generic05.json"
    )
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    started = time.time()
    library = characterize_library(GENERIC_05UM, verbose=True)
    library.meta["build_seconds"] = round(time.time() - started, 1)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    library.save(out_path)
    print(f"wrote {out_path} ({len(library.cells)} cells, "
          f"{library.meta['build_seconds']} s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
