#!/usr/bin/env python3
"""Micro-benchmark the timing core: STA, ITR, and ATPG throughput.

Times three workloads against a *seed-faithful* baseline — the scalar,
uncached code paths plus the search-layer behaviors of the
pre-optimization tree (full re-implication per refine, full window
refinement per fault, fresh faulty simulator per candidate vector):

* **STA full pass** — ``TimingAnalyzer.analyze()`` over a benchmark
  circuit (batched NumPy corner kernels vs. the scalar reference).
* **STA full pass, level engine** — the level-compiled
  structure-of-arrays pass (``repro.sta.compile``) vs. the scalar
  reference on the two largest packaged circuits.
* **Incremental STA trials** — per-edit cost of
  ``IncrementalAnalyzer`` what-if batches (``try_edits``, a K=32 size
  ladder per gate) and solo re-times vs. the full level pass, on the
  same two circuits.
* **ITR per-decision refine** — ``refine_incremental`` over a decision
  sequence (the gate-propagation memo makes the untouched cone free).
* **ATPG fault throughput** — ``run_all`` over a random fault list with
  ITR pruning on, seed-behavior serial baseline vs. optimized serial
  vs. fault-parallel.
* **Monte Carlo STA** — ``repro.stat.run_mc`` sample throughput vs. the
  naive alternative of one deterministic analyzer pass per sample (the
  vectorized engine pushes a whole sample block through the batched
  kernels in one pass per gate).

All timings are best-of-N to damp scheduler noise.  Writes a
machine-readable ``benchmarks/results/BENCH_timing.json`` with
per-workload seconds and speedups.  ``--quick`` shrinks the workloads
for CI smoke runs.

Usage:
    python scripts/bench_timing.py [--quick] [--jobs N] [--out FILE]
"""

import argparse
import contextlib
import gc
import json
import os
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.atpg import AtpgConfig, CrosstalkAtpg, generate_fault_list  # noqa: E402
from repro.atpg.excite import check_excitation  # noqa: E402
from repro.characterize.formulas import QuadPoly1  # noqa: E402
from repro.characterize.library import CellLibrary  # noqa: E402
from repro.circuit import load_packaged_bench  # noqa: E402
from repro.circuit import logic  # noqa: E402
from repro.itr import implication  # noqa: E402
from repro.itr.refine import ItrEngine  # noqa: E402
from repro.itr.values import TwoFrame  # noqa: E402
from repro.models import base as models_base  # noqa: E402
from repro.sta import corners  # noqa: E402
from repro.obs.manifest import (  # noqa: E402
    attach_manifest,
    current_manifest,
    library_content_hash,
    set_run_context,
)
from repro.sta.analysis import PerfConfig, TimingAnalyzer  # noqa: E402
from repro.sta.incremental import IncrementalAnalyzer, TrialEdit  # noqa: E402
from repro.stat import run_mc  # noqa: E402

NS = 1e-9

BASELINE = PerfConfig(batched_kernels=False, memo_enabled=False)
OPTIMIZED = PerfConfig()


def _seed_min_over(self, lo, hi):
    """The seed's interval minimum (candidate list, double evaluation)."""
    candidates = [lo, hi]
    if self.a2 > 0.0:
        valley = -self.a1 / (2.0 * self.a2)
        if lo < valley < hi:
            candidates.append(valley)
    best = min(candidates, key=self.__call__)
    return best, self(best)


def _seed_max_over(self, lo, hi):
    """The seed's interval maximum (candidate list, double evaluation)."""
    candidates = [lo, hi]
    peak = self.peak_location()
    if peak is not None and lo < peak < hi:
        candidates.append(peak)
    best = max(candidates, key=self.__call__)
    return best, self(best)


def _seed_pin_bounds(cell, pin, in_rising, out_rising, t_s, t_l, load):
    """The seed's per-pin bounds: two arc lookups and two clamps."""
    d_min, d_max = corners.pin_delay_bounds(
        cell, pin, in_rising, out_rising, t_s, t_l, load
    )
    t_min, t_max = corners.pin_trans_bounds(
        cell, pin, in_rising, out_rising, t_s, t_l, load
    )
    return d_min, d_max, t_min, t_max


@contextlib.contextmanager
def _seed_scalar_layer():
    """Restore the seed's scalar arithmetic structure while active.

    The current tree's scalar reference path carries micro-optimizations
    the seed did not have (fused per-pin bounds, single-evaluation
    interval extremes, the three-valued gate-evaluation memo).  They
    change no results — only cost — so the baseline legs run with the
    seed's structure to keep the recorded speedups meaningful against
    the original code.
    """
    saved = (QuadPoly1.min_over, QuadPoly1.max_over, corners._pin_bounds)
    saved_eval = (
        implication.evaluate_gate,
        models_base.evaluate_gate,
        logic.evaluate_gate,
    )
    QuadPoly1.min_over = _seed_min_over
    QuadPoly1.max_over = _seed_max_over
    corners._pin_bounds = _seed_pin_bounds
    implication.evaluate_gate = logic._evaluate_gate
    models_base.evaluate_gate = logic._evaluate_gate
    logic.evaluate_gate = logic._evaluate_gate
    try:
        yield
    finally:
        QuadPoly1.min_over, QuadPoly1.max_over, corners._pin_bounds = saved
        implication.evaluate_gate = saved_eval[0]
        models_base.evaluate_gate = saved_eval[1]
        logic.evaluate_gate = saved_eval[2]


def _seed_imply(engine):
    """Strip the implication fixpoint marker, as the seed tree had none.

    ``imply`` then returns a plain dict, so every refine re-implies the
    full circuit — the seed's behavior.  The implied values (and hence
    every search decision) are unchanged; only the repeat work returns.
    """
    implicator = engine.implicator
    original = implicator.imply
    implicator.imply = (
        lambda values, seeds=None: dict(original(values, seeds))
    )


class SeedBehaviorAtpg(CrosstalkAtpg):
    """The seed revision's search loop, for the baseline measurement.

    A plain ``PerfConfig(batched_kernels=False, memo_enabled=False)``
    only turns off the kernel/memo layers; the search layer of this tree
    also carries algorithmic improvements the seed did not have.  This
    subclass disables those too, reproducing the seed's code paths:

    * full re-implication on every refine (no fixpoint marker),
    * a full window refinement at the start of every fault (no shared
      all-unspecified baseline result),
    * a fresh faulty-circuit simulator for every candidate vector.

    Results are identical either way — only the running time differs.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        _seed_imply(self.engine)

    def _prune(self, fault, values, previous=None):
        # Seed behavior: previous=None means a full refine, per fault.
        if previous is not None:
            result = self.engine.refine_incremental(previous, values)
        else:
            result = self.engine.refine(values)
        verdict = check_excitation(fault, result, self._required)
        reason = None
        if not verdict.logic_possible:
            reason = "excitation logic"
        elif not verdict.alignment_possible:
            reason = "timing alignment"
        elif not verdict.violation_possible:
            reason = "no violation possible"
        if reason is not None:
            self.stats.itr_prunes += 1
            self._m_prunes.inc()
        return reason, result

    def _detects(self, fault, vector):
        self._faulty_for = None  # defeat the per-fault simulator reuse
        return super()._detects(fault, vector)


def _best_of(repeats, fn):
    """Best-of-N wall time (seconds) plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def bench_sta(circuit, library, passes):
    """Full-pass STA: batched kernels vs. scalar reference."""
    out = {"circuit": circuit.name, "passes": passes}
    for label, perf in (("baseline", BASELINE), ("optimized", OPTIMIZED)):
        # A fresh analyzer per pass so the memo never carries over:
        # this benchmarks the kernels, not the cache.
        def one_pass(perf=perf):
            return TimingAnalyzer(circuit, library, perf=perf).analyze()

        scope = (
            _seed_scalar_layer() if label == "baseline"
            else contextlib.nullcontext()
        )
        with scope:
            best, _ = _best_of(passes, one_pass)
        out[f"{label}_s_per_pass"] = best
    out["speedup"] = out["baseline_s_per_pass"] / out["optimized_s_per_pass"]
    return out


def bench_sta_level(circuits, library, passes):
    """Full-pass STA: level-compiled SoA engine vs. the seed scalar path.

    The baseline leg times fresh seed-structure scalar analyzers (one
    full pass each); the level leg compiles once per circuit and times
    the compiled forward pass, which is how the engine is used (compile
    cost is reported separately as ``compile_s``).  Results are
    bit-identical — the ``test_sta_compile`` parity suite and the
    ``level`` fuzz oracle enforce that; this only measures time.
    """
    from repro.sta.compile import LevelCompiledAnalyzer

    out = {"passes": passes, "circuits": {}}
    total_base = total_level = 0.0
    for circuit in circuits:
        def scalar_pass(circuit=circuit):
            return TimingAnalyzer(
                circuit, library, perf=BASELINE
            ).analyze()

        with _seed_scalar_layer():
            base_s, _ = _best_of(passes, scalar_pass)
        started = time.perf_counter()
        analyzer = LevelCompiledAnalyzer(circuit, library)
        compile_s = time.perf_counter() - started
        level_s, _ = _best_of(passes, analyzer.analyze)
        entry = {
            "baseline_s_per_pass": base_s,
            "level_s_per_pass": level_s,
            "compile_s": compile_s,
            "speedup": base_s / level_s,
        }
        out["circuits"][circuit.name] = entry
        total_base += base_s
        total_level += level_s
    out["baseline_s_per_pass"] = total_base
    out["level_s_per_pass"] = total_level
    out["speedup"] = total_base / total_level
    return out


def bench_itr(circuit, library, decisions, repeats):
    """Per-decision incremental refinement, search-style.

    Each trial walks the same decision sequence twice from the base
    result — the way a backtracking search re-derives sibling branches —
    so the propagation memo gets the revisits it is built for.
    """
    pis = circuit.inputs
    sequence = [
        (pis[i % len(pis)], TwoFrame.parse("01" if i % 2 else "10"))
        for i in range(min(decisions, len(pis)))
    ]
    passes = 2
    out = {
        "circuit": circuit.name,
        "decisions": len(sequence),
        "passes": passes,
    }
    for label, perf in (("baseline", BASELINE), ("optimized", OPTIMIZED)):

        def run(perf=perf, label=label):
            engine = ItrEngine(circuit, library, perf=perf)
            if label == "baseline":
                _seed_imply(engine)
            base = engine.refine(engine.initial_values())
            started = time.perf_counter()
            for _ in range(passes):
                result = base
                for line, literal in sequence:
                    result = engine.refine_assign(result, line, literal)
            return time.perf_counter() - started

        # run() times just the decision loops (engine setup excluded),
        # so take the best of its returns rather than _best_of's wall.
        scope = (
            _seed_scalar_layer() if label == "baseline"
            else contextlib.nullcontext()
        )
        with scope:
            times = [run() for _ in range(repeats)]
        out[f"{label}_s_per_decision"] = (
            min(times) / (passes * len(sequence))
        )
    out["speedup"] = (
        out["baseline_s_per_decision"] / out["optimized_s_per_decision"]
    )
    return out


def bench_atpg(circuit, library, n_faults, jobs, repeats):
    """ATPG-with-ITR fault throughput: the headline workload.

    The workload mirrors the Section 7 experiment: sizeable fault deltas
    and a clock at 85% of the longest fault-free arrival, so every fault
    drives a real ITR-pruned search.
    """
    faults = generate_fault_list(
        circuit, n_faults, seed=1, delta=0.5 * NS, window=0.4 * NS
    )
    probe = CrosstalkAtpg(circuit, library, config=AtpgConfig())
    period = probe._sta.output_max_arrival() * 0.85
    config = AtpgConfig(use_itr=True, backtrack_limit=48, period=period)
    out = {
        "circuit": circuit.name,
        "faults": len(faults),
        "jobs": jobs,
        "repeats": repeats,
        "baseline": "seed-behavior serial (scalar kernels, no memo, "
                    "full re-imply + full refine per fault, seed scalar "
                    "arithmetic structure)",
    }

    def run(cls, perf, run_jobs):
        # A fresh generator per repetition: memo and shared baseline
        # start cold, so repeats measure the same work.  The collect
        # keeps one leg's garbage from being charged to the next.
        gc.collect()
        atpg = cls(circuit, library, config=config, perf=perf)
        return atpg.run_all(faults, jobs=run_jobs)

    with _seed_scalar_layer():
        base_s, base = _best_of(
            repeats, lambda: run(SeedBehaviorAtpg, BASELINE, 1)
        )
    opt_s, opt = _best_of(repeats, lambda: run(CrosstalkAtpg, OPTIMIZED, 1))
    par_s, par = _best_of(
        repeats, lambda: run(CrosstalkAtpg, OPTIMIZED, jobs)
    )
    statuses = [r.status for r in base.results]
    if [r.status for r in opt.results] != statuses or (
        [r.status for r in par.results] != statuses
    ):
        raise AssertionError("optimized ATPG diverged from the baseline")
    out["baseline_serial_s"] = base_s
    out["optimized_serial_s"] = opt_s
    out["optimized_parallel_s"] = par_s
    out["speedup_serial"] = base_s / opt_s
    out["speedup_parallel"] = base_s / par_s
    out["s_per_fault_baseline"] = base_s / len(faults)
    out["s_per_fault_optimized"] = opt_s / len(faults)
    return out


def bench_mc(circuit, library, samples, baseline_passes, repeats):
    """Monte Carlo sample throughput vs. one-STA-pass-per-sample.

    The baseline leg times a handful of fresh full analyzer passes (what
    sampling would cost without the vectorized engine) and extrapolates
    to per-sample cost; the MC leg runs the real ``run_mc`` serially so
    the comparison is vectorization, not the process pool.
    """
    out = {
        "circuit": circuit.name,
        "samples": samples,
        "baseline_passes": baseline_passes,
        "baseline": "one fresh TimingAnalyzer.analyze() per sample "
                    "(extrapolated from best-of timed passes)",
    }

    def one_pass():
        return TimingAnalyzer(circuit, library).analyze()

    base_pass_s, _ = _best_of(baseline_passes, one_pass)
    mc_s, _ = _best_of(
        repeats,
        lambda: run_mc(circuit, library, samples=samples, seed=0, jobs=1),
    )
    out["baseline_s_per_sample"] = base_pass_s
    out["mc_s"] = mc_s
    out["mc_s_per_sample"] = mc_s / samples
    out["speedup"] = out["baseline_s_per_sample"] / out["mc_s_per_sample"]
    return out


#: The K=32 size ladder a gate-sizing pass evaluates per candidate gate.
_TRIAL_SIZES = (
    0.5, 0.7, 1.0, 1.4, 2.0, 2.8, 4.0, 5.7, 8.0, 11.3, 16.0, 22.6,
    0.35, 0.25, 3.4, 6.8, 1.2, 1.8, 2.4, 3.0, 4.8, 9.6, 0.6, 0.8,
    1.1, 1.3, 1.6, 2.2, 2.6, 3.6, 5.0, 7.0,
)


def bench_sta_incremental(circuits, library, passes, trial_gates):
    """Per-edit cost of incremental trials vs. the full level pass.

    Three legs per circuit, measured in the *same run* so the ratios are
    immune to machine drift: the full level-engine pass, a solo re-time
    of one real resize edit (apply + revert, two cone replays), and the
    gate-sizing optimizer's inner-loop shape — a K=32 size ladder on one
    gate evaluated as a single ``try_edits`` batch, averaged over a
    seeded random gate sample.  Bit-identity of all three against a
    fresh scalar analysis is enforced by ``tests/test_incremental.py``
    and the ``incremental`` fuzz oracle; this only measures time.
    """
    K = len(_TRIAL_SIZES)
    out = {
        "passes": passes,
        "trial_k": K,
        "trial_gates": trial_gates,
        "circuits": {},
    }
    total_full = total_retime = total_trial = 0.0
    for circuit in circuits:
        analyzer = TimingAnalyzer(
            circuit, library, perf=PerfConfig(engine="level")
        )
        incr = IncrementalAnalyzer(analyzer)
        incr.analyze()
        full_s, _ = _best_of(passes, analyzer.analyze)

        # Solo re-time: one real edit, re-timed, then reverted (another
        # re-time) — the per-edit figure halves the pair.
        gate = max(circuit.gates, key=lambda g: len(circuit.fanouts(g)))
        original = circuit.gates[gate].size

        def retime_pair(gate=gate, original=original):
            circuit.resize_gate(gate, original * 1.4)
            incr.retime()
            circuit.resize_gate(gate, original)
            return incr.retime()

        retime_s, _ = _best_of(passes, retime_pair)
        retime_s /= 2.0

        # Trial batches: K hypothetical sizes of one gate per batch.
        rng = random.Random(12345)
        lines = sorted(circuit.gates)
        sample = [rng.choice(lines) for _ in range(trial_gates)]

        def trial_round():
            for g in sample:
                incr.try_edits(
                    [TrialEdit("resize", g, s) for s in _TRIAL_SIZES]
                ).max_arrivals()

        batch_s, _ = _best_of(passes, trial_round)
        trial_s = batch_s / trial_gates / K
        entry = {
            "full_s_per_pass": full_s,
            "retime_s_per_edit": retime_s,
            "incr_s_per_edit": trial_s,
            "speedup_retime": full_s / retime_s,
            "speedup": full_s / trial_s,
        }
        out["circuits"][circuit.name] = entry
        total_full += full_s
        total_retime += retime_s
        total_trial += trial_s
    out["full_s_per_pass"] = total_full
    out["retime_s_per_edit"] = total_retime
    out["incr_s_per_edit"] = total_trial
    out["speedup_retime"] = total_full / total_retime
    out["speedup"] = total_full / total_trial
    return out


def bench_corner(circuit, library, passes):
    """Corner-batched N-corner pass vs. N separate single-corner passes.

    Both legs run the level-compiled engine with compilation excluded
    (analyzers are built once, outside the timed region) — the
    comparison is the batched trailing-corner-axis sweep against N
    independent sweeps, which is how multi-corner signoff would run
    without the corner axis.  Results are bit-identical — enforced by
    ``tests/test_pvt.py`` and the ``corners`` fuzz oracle; this only
    measures time.
    """
    from repro.pvt import STANDARD_CORNERS, CornerAnalyzer, scaled_library
    from repro.sta.compile import LevelCompiledAnalyzer

    corners = [
        STANDARD_CORNERS["fast"],
        STANDARD_CORNERS["typ"],
        STANDARD_CORNERS["slow"],
        STANDARD_CORNERS["slow_derated"],
    ]
    libraries = [scaled_library(library, corner) for corner in corners]
    batched = CornerAnalyzer(circuit, corners, libraries, engine="level")
    separates = [
        LevelCompiledAnalyzer(circuit, lib) for lib in libraries
    ]
    derate_pairs = [corner.derates for corner in corners]

    batched_s, _ = _best_of(passes, batched.analyze)

    def separate_round():
        return [
            analyzer.analyze_corners(derates=derates)[0]
            for analyzer, derates in zip(separates, derate_pairs)
        ]

    separate_s, _ = _best_of(passes, separate_round)
    n = len(corners)
    return {
        "circuit": circuit.name,
        "corners": [corner.name for corner in corners],
        "passes": passes,
        "baseline": "one single-corner level-engine pass per corner "
                    "(compile excluded from both legs)",
        "batched_s_per_pass": batched_s,
        "separate_s_per_pass": separate_s,
        "batched_s_per_corner": batched_s / n,
        "separate_s_per_corner": separate_s / n,
        "batched_vs_separate_ratio": batched_s / separate_s,
        "speedup": separate_s / batched_s,
    }


def bench_server(circuit_name, warm_queries, cold_runs):
    """Warm daemon queries vs. cold one-shot CLI processes.

    The cold leg times a full ``repro-sta sta`` process per question —
    the pre-daemon cost of one timing query (interpreter boot, library
    load, full analysis).  The warm leg asks distinct what-if questions
    (a fresh resize value each time, so the response memo cannot
    answer) over real HTTP against a live :class:`ServerThread` whose
    session engines were warmed by one untimed query.  Answers are
    bitwise-identical either way — ``tests/test_server.py`` and the
    ``serve`` fuzz oracle enforce that; this only measures latency.
    """
    import subprocess

    from repro.server import ServerClient, ServerConfig, ServerThread

    circuit = load_packaged_bench(circuit_name)
    env = {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH")
               else [])
        ),
    }

    def cold_once():
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "sta", circuit_name],
            check=True, capture_output=True, env=env, cwd=REPO_ROOT,
        )

    cold_s, _ = _best_of(cold_runs, cold_once)

    gate = max(circuit.gates, key=lambda g: len(circuit.fanouts(g)))
    counter = iter(range(1, 10 ** 9))

    with ServerThread(
        {circuit_name: circuit}, ServerConfig(port=0, workers=0)
    ) as handle:
        with ServerClient("127.0.0.1", handle.port) as client:
            client.result(circuit_name, "slack", {"worst": 5})  # warm up

            def warm_round():
                for _ in range(warm_queries):
                    client.result(circuit_name, "whatif", {"edits": [
                        {"op": "resize", "line": gate,
                         "value": 1.0 + next(counter) * 1e-6},
                    ]})

            warm_total, _ = _best_of(2, warm_round)
    warm_s = warm_total / warm_queries
    return {
        "circuit": circuit_name,
        "cold_runs": cold_runs,
        "warm_queries": warm_queries,
        "baseline": "one `repro-sta sta` process per question "
                    "(interpreter boot + library load + full analysis)",
        "cold_s_per_query": cold_s,
        "warm_s_per_query": warm_s,
        "speedup": cold_s / warm_s,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI smoke mode)")
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel ATPG leg")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "benchmarks" / "results"
                        / "BENCH_timing.json")
    args = parser.parse_args()
    set_run_context(command="bench_timing", args=sys.argv[1:])

    library = CellLibrary.load_default()
    sta_circuit = load_packaged_bench("c880s")
    itr_circuit = load_packaged_bench("c432s")
    passes = 3 if args.quick else 5
    decisions = 8 if args.quick else 24
    n_faults = 6 if args.quick else 20
    repeats = 2 if args.quick else 3
    mc_samples = 64 if args.quick else 256
    mc_baseline_passes = 3 if args.quick else 8

    report = {
        "generated_unix": time.time(),
        "quick": args.quick,
        "perf_defaults": {
            "batched_kernels": OPTIMIZED.batched_kernels,
            "batch_min_fanin": OPTIMIZED.batch_min_fanin,
            "memo_enabled": OPTIMIZED.memo_enabled,
            "memo_max_entries": OPTIMIZED.memo_max_entries,
            "memo_quantum": OPTIMIZED.memo_quantum,
        },
    }
    print("benchmarking STA full pass ...", flush=True)
    report["sta_full_pass"] = bench_sta(sta_circuit, library, passes)
    print("benchmarking STA full pass (level engine) ...", flush=True)
    level_circuits = [
        load_packaged_bench(name) for name in ("c5315s", "c7552s")
    ]
    report["sta_full_pass_level"] = bench_sta_level(
        level_circuits, library, passes
    )
    print("benchmarking incremental STA trials ...", flush=True)
    report["sta_incremental"] = bench_sta_incremental(
        level_circuits, library, passes, trial_gates=4 if args.quick else 12
    )
    print("benchmarking ITR per-decision refine ...", flush=True)
    report["itr_refine"] = bench_itr(itr_circuit, library, decisions, repeats)
    print("benchmarking ATPG fault throughput ...", flush=True)
    report["atpg_with_itr"] = bench_atpg(
        itr_circuit, library, n_faults, args.jobs, repeats
    )
    print("benchmarking Monte Carlo STA throughput ...", flush=True)
    report["mc"] = bench_mc(
        itr_circuit, library, mc_samples, mc_baseline_passes, repeats
    )
    print("benchmarking corner-batched STA ...", flush=True)
    report["corner"] = bench_corner(
        load_packaged_bench("c7552s"), library, passes
    )
    print("benchmarking daemon warm-query latency ...", flush=True)
    report["server"] = bench_server(
        "c432s",
        warm_queries=16 if args.quick else 48,
        cold_runs=2 if args.quick else 3,
    )

    attach_manifest(
        report,
        current_manifest(
            library_hash=library_content_hash(library),
            jobs=args.jobs,
        ),
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for name in (
        "sta_full_pass", "sta_full_pass_level", "sta_incremental",
        "itr_refine", "atpg_with_itr", "mc", "corner", "server",
    ):
        entry = report[name]
        speedup = entry.get("speedup", entry.get("speedup_serial"))
        print(f"  {name}: {speedup:.2f}x")
    if "speedup_parallel" in report["atpg_with_itr"]:
        print(
            "  atpg_with_itr (parallel, jobs="
            f"{report['atpg_with_itr']['jobs']}): "
            f"{report['atpg_with_itr']['speedup_parallel']:.2f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
