#!/usr/bin/env python3
"""Write the packaged benchmark netlists into src/repro/data/.

Ships the real ISCAS85 c17 plus the seeded synthetic stand-ins for the
larger circuits (see DESIGN.md, "Substitutions").
"""

from pathlib import Path

from repro.circuit import (
    C17_BENCH,
    ISCAS_PROFILES,
    generate_iscas_like,
    save_bench,
)


def main() -> int:
    data_dir = Path(__file__).resolve().parent.parent / "src" / "repro" / "data"
    data_dir.mkdir(parents=True, exist_ok=True)
    (data_dir / "c17.bench").write_text(C17_BENCH)
    print("wrote c17.bench")
    for name in ISCAS_PROFILES:
        circuit = generate_iscas_like(name)
        save_bench(circuit, data_dir / f"{name}.bench")
        print(f"wrote {name}.bench {circuit.stats()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
