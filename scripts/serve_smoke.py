#!/usr/bin/env python
"""CI smoke for the timing daemon (``repro-sta serve``).

Boots a real daemon subprocess on a fixed port with shard workers,
fires a concurrent client mix at it (healthz, windows, slack, paths,
Monte Carlo, what-if batches, planted duplicates), then checks

* every response is structured (no tracebacks on the wire);
* one MC response is bitwise-identical to a one-shot
  ``repro-sta mc --json`` run (minus the run manifest);
* ``/metrics`` exposes per-endpoint request counters and latency
  histograms, including metrics merged back from shard workers;
* ``POST /v1/shutdown`` exits the daemon cleanly — a nonzero daemon
  exit (leaked workers) fails the smoke.

Exits 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Subprocess environment: works from a checkout (PYTHONPATH=src) and
#: from an installed package alike.
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(REPO / "src")]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH")
           else [])
    ),
}

from repro.server.client import ServerClient  # noqa: E402

MC_PARAMS = {
    "samples": 48, "seed": 11, "block": 16,
    "sigma_corr": 0.04, "sigma_ind": 0.06,
    "quantiles": [0.5, 0.95, 0.99],
}


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def wait_ready(port: int, proc: subprocess.Popen, budget: float = 60.0):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"daemon exited early with rc={proc.returncode}")
        try:
            with ServerClient("127.0.0.1", port, timeout=5) as client:
                if client.healthz().get("status") == "ok":
                    return
        except OSError:
            time.sleep(0.25)
    fail("daemon did not become ready in time")


def client_mix(port: int) -> list:
    """The concurrent query mix; returns the raw response bodies."""
    queries = [
        ("c17", "windows", {"lines": None}),
        ("c17", "slack", {"worst": 5, "clock_ns": 2.0}),
        ("c17", "path", {"kind": "max"}),
        ("c432s", "windows", {"model": "vshape"}),
        ("c432s", "slack", {"worst": 8}),
        ("c432s", "path", {"kind": "min"}),
        ("c432s", "mc", dict(MC_PARAMS)),
        ("c432s", "mc", dict(MC_PARAMS)),  # duplicate: dedup/memo path
        ("c432s", "whatif", {"edits": [
            {"op": "resize", "line": "G100", "value": 2.0},
        ], "clock_ns": 3.0}),
        ("c432s", "whatif", {"edits": [
            {"op": "resize", "line": "G100", "value": 0.5},
        ], "clock_ns": 3.0}),
        ("c17", "windows", {"lines": None}),  # duplicate again
    ]

    def one(spec):
        circuit, method, params = spec
        with ServerClient("127.0.0.1", port, timeout=60) as client:
            return client.query(circuit, method, params)

    with ThreadPoolExecutor(max_workers=6) as pool:
        return list(pool.map(one, queries))


def check_responses(bodies: list) -> dict:
    """Validate the mix; returns the first MC response body."""
    mc_body = None
    for body in bodies:
        wire = json.dumps(body)
        if "traceback" in wire.lower():
            fail(f"traceback leaked onto the wire: {wire[:200]}")
        if not body.get("ok"):
            fail(f"query failed: {wire[:300]}")
        if body["method"] == "mc" and mc_body is None:
            mc_body = body
    if mc_body is None:
        fail("no MC response in the mix")
    dupes = [b for b in bodies if b.get("cached")]
    print(f"serve smoke: {len(bodies)} responses ok, "
          f"{len(dupes)} answered from the memo")
    return mc_body


def check_cli_parity(mc_result: dict) -> None:
    """The daemon's MC answer must equal a one-shot CLI run, bitwise."""
    out = Path(tempfile.mkdtemp(prefix="serve-smoke-")) / "mc.json"
    cmd = [
        sys.executable, "-m", "repro.cli", "mc", "c432s",
        "--samples", str(MC_PARAMS["samples"]),
        "--seed", str(MC_PARAMS["seed"]),
        "--block", str(MC_PARAMS["block"]),
        "--sigma-corr", str(MC_PARAMS["sigma_corr"]),
        "--sigma-ind", str(MC_PARAMS["sigma_ind"]),
        "--quantiles", ",".join(str(q) for q in MC_PARAMS["quantiles"]),
        "--json", str(out),
    ]
    proc = subprocess.run(
        cmd, cwd=REPO, env=ENV, capture_output=True, text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        fail(f"one-shot CLI mc failed: {proc.stderr[-400:]}")
    reference = json.loads(out.read_text())
    reference.pop("run_manifest", None)
    served = json.dumps(mc_result, sort_keys=True)
    oneshot = json.dumps(reference, sort_keys=True)
    if served != oneshot:
        fail(
            "daemon MC response is not bitwise-identical to the "
            f"one-shot CLI:\n  served:  {served[:400]}\n"
            f"  one-shot: {oneshot[:400]}"
        )
    print("serve smoke: daemon MC response == one-shot CLI, bitwise")


def check_metrics(port: int) -> None:
    with ServerClient("127.0.0.1", port, timeout=10) as client:
        text = client.metrics()
    required = [
        # Per-endpoint counters + latency histograms.
        "repro_server_requests_windows_total",
        "repro_server_requests_mc_total",
        "repro_server_windows_latency_s",
        'repro_server_mc_latency_s{quantile="0.5"}',
        # Session metrics computed inside shard workers must merge
        # back into the parent scrape.
        "repro_server_session_analyzers_built_total",
        "repro_server_session_mc_samples_total",
        "repro_server_memo_hits_total",
    ]
    missing = [name for name in required if name not in text]
    if missing:
        fail(f"/metrics is missing {missing}; got:\n{text[:800]}")
    print(f"serve smoke: /metrics ok ({len(text.splitlines())} lines)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8971)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "c17", "c432s",
            "--port", str(args.port), "--workers", str(args.workers),
        ],
        cwd=REPO,
        env=ENV,
    )
    try:
        wait_ready(args.port, daemon)
        mc_body = check_responses(client_mix(args.port))
        check_cli_parity(mc_body["result"])
        check_metrics(args.port)
        with ServerClient("127.0.0.1", args.port, timeout=10) as client:
            client.shutdown()
        rc = daemon.wait(timeout=30)
        if rc != 0:
            fail(f"daemon exited rc={rc} (leaked workers?)")
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            try:
                daemon.wait(timeout=10)
            except subprocess.TimeoutExpired:
                daemon.kill()
    print("serve smoke OK: clean shutdown, no leaked workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
