#!/usr/bin/env python3
"""Validate metrics-trace artifacts (CI obs-smoke gate).

Checks a JSON-lines trace written by ``--trace-json`` against the
format contract of :mod:`repro.obs.emit`:

* a leading ``meta`` event with a supported version;
* a ``manifest`` event carrying every field of ``MANIFEST_FIELDS``
  (version-2 traces; v1 files are accepted without one);
* well-typed ``span`` / ``counter`` / ``gauge`` / ``histogram`` events
  and nothing else;
* span lanes are non-negative integers and lane 0 (the parent) exists.

With ``--chrome FILE`` also validates a Chrome trace-event export: the
``traceEvents`` structure, one ``thread_name`` metadata event per lane,
and ``X`` events whose ``tid`` matches a declared lane.

Options ``--expect-lanes N`` (exactly N worker lanes beyond the parent)
and ``--expect-manifest`` (fail v1 traces) tighten the gate for
instrumented multi-worker CI runs.

Usage::

    python scripts/validate_trace.py trace.jsonl \
        [--chrome trace.chrome.json] [--expect-lanes N] \
        [--expect-manifest]

Exits 0 when every check passes, 1 with one line per violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.emit import TRACE_VERSION, read_trace  # noqa: E402
from repro.obs.manifest import MANIFEST_FIELDS  # noqa: E402

_SPAN_FIELDS = {
    "name": str,
    "path": str,
    "start_s": (int, float),
    "elapsed_s": (int, float),
    "depth": int,
}
_HIST_SUMMARY_FIELDS = ("count", "total", "min", "max", "mean",
                        "p50", "p90", "p99")
_EVENT_TYPES = ("meta", "manifest", "span", "counter", "gauge", "histogram")


def validate_trace(path: Path, expect_manifest: bool = False) -> list:
    """All format violations in one JSON-lines trace (empty = valid)."""
    errors = []
    try:
        events = read_trace(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace: {exc}"]
    if not events:
        return ["empty trace"]
    meta = events[0]
    if meta.get("type") != "meta":
        errors.append(f"first event must be meta, got {meta.get('type')!r}")
        version = None
    else:
        version = meta.get("version")
        if not isinstance(version, int) or not 1 <= version <= TRACE_VERSION:
            errors.append(f"unsupported trace version {version!r}")
    manifests = [e for e in events if e.get("type") == "manifest"]
    if version == TRACE_VERSION and not manifests:
        errors.append("version-2 trace has no manifest event")
    if expect_manifest and not manifests:
        errors.append("manifest required (--expect-manifest) but absent")
    for event in manifests:
        manifest = event.get("manifest")
        if not isinstance(manifest, dict):
            errors.append("manifest event carries no dict")
            continue
        for field in MANIFEST_FIELDS:
            if field not in manifest:
                errors.append(f"manifest missing field {field!r}")
    for i, event in enumerate(events):
        kind = event.get("type")
        if kind not in _EVENT_TYPES:
            errors.append(f"event {i}: unknown type {kind!r}")
        elif kind == "span":
            for field, types in _SPAN_FIELDS.items():
                if not isinstance(event.get(field), types):
                    errors.append(
                        f"event {i}: span field {field!r} is "
                        f"{event.get(field)!r}"
                    )
            lane = event.get("lane", 0)
            if not isinstance(lane, int) or lane < 0:
                errors.append(f"event {i}: bad span lane {lane!r}")
        elif kind in ("counter", "gauge"):
            if not isinstance(event.get("name"), str):
                errors.append(f"event {i}: {kind} without a name")
            value = event.get("value")
            if kind == "counter" and not isinstance(value, int):
                errors.append(f"event {i}: counter value {value!r}")
            if kind == "gauge" and not isinstance(value, (int, float)):
                errors.append(f"event {i}: gauge value {value!r}")
        elif kind == "histogram":
            summary = event.get("summary")
            if not isinstance(summary, dict):
                errors.append(f"event {i}: histogram without a summary")
                continue
            for field in _HIST_SUMMARY_FIELDS:
                if not isinstance(summary.get(field), (int, float)):
                    errors.append(
                        f"event {i}: histogram summary field {field!r} is "
                        f"{summary.get(field)!r}"
                    )
    return errors


def trace_lanes(path: Path) -> set:
    """The set of span lanes present in a trace file."""
    return {
        event.get("lane", 0)
        for event in read_trace(path)
        if event.get("type") == "span"
    }


def validate_chrome(path: Path) -> list:
    """All format violations in a Chrome trace-event export."""
    errors = []
    try:
        trace = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable chrome trace: {exc}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["chrome trace has no traceEvents list"]
    named_lanes = set()
    for event in events:
        if event.get("ph") == "M":
            if event.get("name") != "thread_name":
                errors.append(f"unexpected metadata event {event!r}")
                continue
            named_lanes.add(event.get("tid"))
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            errors.append(f"chrome event {i}: unexpected phase {ph!r}")
            continue
        if event.get("tid") not in named_lanes:
            errors.append(
                f"chrome event {i}: tid {event.get('tid')!r} has no "
                "thread_name lane"
            )
        for field in ("ts", "dur"):
            if not isinstance(event.get(field), (int, float)):
                errors.append(
                    f"chrome event {i}: {field} is {event.get(field)!r}"
                )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSON-lines trace from --trace-json")
    parser.add_argument(
        "--chrome", default=None, metavar="FILE",
        help="also validate a Chrome trace-event export of the same run",
    )
    parser.add_argument(
        "--expect-lanes", type=int, default=None, metavar="N",
        help="require exactly N worker lanes beyond the parent lane",
    )
    parser.add_argument(
        "--expect-manifest", action="store_true",
        help="fail traces without an embedded run manifest",
    )
    args = parser.parse_args(argv)
    errors = validate_trace(
        Path(args.trace), expect_manifest=args.expect_manifest
    )
    if not errors and args.expect_lanes is not None:
        workers = {lane for lane in trace_lanes(Path(args.trace)) if lane}
        if len(workers) != args.expect_lanes:
            errors.append(
                f"expected {args.expect_lanes} worker lane(s), trace has "
                f"{len(workers)}: {sorted(workers)}"
            )
    if args.chrome:
        errors += validate_chrome(Path(args.chrome))
    for error in errors:
        print(f"INVALID: {error}", file=sys.stderr)
    if errors:
        print(f"{args.trace}: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"{args.trace}: valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
